"""Fock-matrix builds: Coulomb (J) and exact-exchange (K).

Two execution styles, mirroring the paper:

* in-core tensor contraction (reference; only for small validation
  systems),
* *direct* screened shell-quartet builds through
  :class:`repro.integrals.ERIEngine` — the serial analogue of the
  paper's distributed HFX build; the parallel scheme in
  :mod:`repro.hfx` partitions exactly these quartets.
"""

from __future__ import annotations

import numpy as np

from ..basis.basisset import BasisSet
from ..integrals.eri import ERIEngine

__all__ = ["jk_from_tensor", "coulomb_from_tensor", "exchange_from_tensor",
           "DirectJKBuilder", "scatter_exchange"]


def scatter_exchange(basis: BasisSet, K: np.ndarray, block: np.ndarray,
                     D: np.ndarray, idx: tuple[int, int, int, int]) -> None:
    """Accumulate one unique quartet's exchange contributions into K.

    The unrestricted sum K_ac = sum_bd (ab|cd) D_bd runs over all
    *ordered* quartets; a unique quartet expands into up to 8 ordered
    permutations, each contributing to one ordered (a, c) block.
    Degenerate permutations (coinciding indices) are counted once.
    Accumulating every ordered permutation leaves K exactly symmetric.
    """
    i, j, k, l = idx
    perms = [
        (i, j, k, l, block),
        (j, i, k, l, block.transpose(1, 0, 2, 3)),
        (i, j, l, k, block.transpose(0, 1, 3, 2)),
        (j, i, l, k, block.transpose(1, 0, 3, 2)),
        (k, l, i, j, block.transpose(2, 3, 0, 1)),
        (l, k, i, j, block.transpose(3, 2, 0, 1)),
        (k, l, j, i, block.transpose(2, 3, 1, 0)),
        (l, k, j, i, block.transpose(3, 2, 1, 0)),
    ]
    seen = set()
    for (a, b, c, d, blk) in perms:
        if (a, b, c, d) in seen:
            continue
        seen.add((a, b, c, d))
        sa, sb = basis.shell_slice(a), basis.shell_slice(b)
        sc, sd = basis.shell_slice(c), basis.shell_slice(d)
        # K_ac += (ab|cd) D_bd
        K[sa, sc] += np.einsum("xyzw,yw->xz", blk, D[sb, sd])


def coulomb_from_tensor(eri: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Coulomb matrix J_pq = sum_rs (pq|rs) D_rs."""
    return np.einsum("pqrs,rs->pq", eri, D, optimize=True)


def exchange_from_tensor(eri: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Exchange matrix K_pq = sum_rs (pr|qs) D_rs."""
    return np.einsum("prqs,rs->pq", eri, D, optimize=True)


def jk_from_tensor(eri: np.ndarray, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Both J and K from an in-core ERI tensor."""
    return coulomb_from_tensor(eri, D), exchange_from_tensor(eri, D)


class DirectJKBuilder:
    """Integral-direct J/K builds with Cauchy-Schwarz + density screening.

    The quartet loop walks unique shell quartets (8-fold symmetry),
    skips those with ``Q_ij * Q_kl * max|D| < eps``, and scatters each
    computed block into all symmetry-related positions of J and K.
    ``eps`` is the paper's controllable-accuracy threshold.
    """

    def __init__(self, basis: BasisSet, eps: float = 1e-10):
        self.basis = basis
        self.eps = eps
        self.engine = ERIEngine(basis)
        self.Q = self.engine.schwarz_bounds()
        self.quartets_total = 0
        self.quartets_computed = 0

    def _unique_quartets(self):
        keys = sorted(self.engine.pairs)
        for a, brakey in enumerate(keys):
            for ketkey in keys[a:]:
                yield brakey, ketkey

    def build(self, D: np.ndarray, want_j: bool = True, want_k: bool = True
              ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Build J and/or K for density ``D`` (AO basis, symmetric)."""
        nbf = self.basis.nbf
        J = np.zeros((nbf, nbf)) if want_j else None
        K = np.zeros((nbf, nbf)) if want_k else None
        dmax = float(np.abs(D).max()) if D.size else 0.0
        self.quartets_total = 0
        self.quartets_computed = 0
        bas = self.basis
        for (i, j), (k, l) in self._unique_quartets():
            self.quartets_total += 1
            if self.Q[(i, j)] * self.Q[(k, l)] * max(dmax, 1.0) < self.eps:
                continue
            self.quartets_computed += 1
            block = self.engine.quartet(i, j, k, l)
            si, sj = bas.shell_slice(i), bas.shell_slice(j)
            sk, sl = bas.shell_slice(k), bas.shell_slice(l)
            # degeneracy factors for the symmetry-unique walk
            dij = 1.0 if i == j else 2.0
            dkl = 1.0 if k == l else 2.0
            dbra = 1.0 if (i, j) == (k, l) else 2.0
            if want_j:
                # J_ij += (ij|kl) D_kl  (and the bra<->ket mirror)
                J[si, sj] += dkl * np.einsum("xyzw,zw->xy", block, D[sk, sl])
                if (i, j) != (k, l):
                    J[sk, sl] += dij * np.einsum("xyzw,xy->zw", block, D[si, sj])
            if want_k:
                # all distinct index permutations contribute to K
                self._scatter_k(K, block, D, (si, sj, sk, sl),
                                (i, j, k, l))
        if want_j:
            # the unique walk fills the upper shell triangle (i <= j);
            # elementwise triangle reflection restores the full
            # symmetric matrix (diagonal shell blocks are complete and
            # symmetric already)
            J = np.triu(J) + np.triu(J, 1).T
        return J, K

    def _scatter_k(self, K, block, D, slices, idx):
        """Delegate to :func:`scatter_exchange` (kept as a method for
        API stability)."""
        scatter_exchange(self.basis, K, block, D, idx)

    def exchange_energy(self, D: np.ndarray) -> float:
        """E_x^HF = -1/4 Tr(K[D] D) for a closed-shell density D
        (D = 2 * C_occ C_occ^T)."""
        _, K = self.build(D, want_j=False, want_k=True)
        return -0.25 * float(np.einsum("pq,pq->", K, D))
