"""Fock-matrix builds: Coulomb (J) and exact-exchange (K).

Two execution styles, mirroring the paper:

* in-core tensor contraction (reference; only for small validation
  systems),
* *direct* screened shell-quartet builds through
  :class:`repro.integrals.ERIEngine` — the serial analogue of the
  paper's distributed HFX build; the parallel scheme in
  :mod:`repro.hfx` partitions exactly these quartets.
"""

from __future__ import annotations

import numpy as np

from ..basis.basisset import BasisSet
from ..integrals.eri import ERIEngine

__all__ = ["jk_from_tensor", "coulomb_from_tensor", "exchange_from_tensor",
           "DirectJKBuilder", "scatter_exchange", "scatter_coulomb",
           "reflect_triangle"]


def scatter_exchange(basis: BasisSet, K: np.ndarray, block: np.ndarray,
                     D: np.ndarray, idx: tuple[int, int, int, int]) -> None:
    """Accumulate one unique quartet's exchange contributions into K.

    The unrestricted sum K_ac = sum_bd (ab|cd) D_bd runs over all
    *ordered* quartets; a unique quartet expands into up to 8 ordered
    permutations, each contributing to one ordered (a, c) block.
    Degenerate permutations (coinciding indices) are counted once.
    Accumulating every ordered permutation leaves K exactly symmetric.
    """
    i, j, k, l = idx
    perms = [
        (i, j, k, l, block),
        (j, i, k, l, block.transpose(1, 0, 2, 3)),
        (i, j, l, k, block.transpose(0, 1, 3, 2)),
        (j, i, l, k, block.transpose(1, 0, 3, 2)),
        (k, l, i, j, block.transpose(2, 3, 0, 1)),
        (l, k, i, j, block.transpose(3, 2, 0, 1)),
        (k, l, j, i, block.transpose(2, 3, 1, 0)),
        (l, k, j, i, block.transpose(3, 2, 1, 0)),
    ]
    seen = set()
    for (a, b, c, d, blk) in perms:
        if (a, b, c, d) in seen:
            continue
        seen.add((a, b, c, d))
        sa, sb = basis.shell_slice(a), basis.shell_slice(b)
        sc, sd = basis.shell_slice(c), basis.shell_slice(d)
        # K_ac += (ab|cd) D_bd
        K[sa, sc] += np.einsum("xyzw,yw->xz", blk, D[sb, sd])


def scatter_coulomb(basis: BasisSet, J: np.ndarray, block: np.ndarray,
                    D: np.ndarray, idx: tuple[int, int, int, int]) -> None:
    """Accumulate one unique quartet's Coulomb contributions into J.

    Only the upper shell triangle of J is filled (every unique quartet
    has ``i <= j`` and ``k <= l``); the caller reflects the triangle
    once at the end of the build.  Reflection commutes with summation,
    so partial J matrices from different workers/ranks can be reduced
    first and reflected once.
    """
    i, j, k, l = idx
    si, sj = basis.shell_slice(i), basis.shell_slice(j)
    sk, sl = basis.shell_slice(k), basis.shell_slice(l)
    dij = 1.0 if i == j else 2.0
    dkl = 1.0 if k == l else 2.0
    # J_ij += (ij|kl) D_kl  (and the bra<->ket mirror)
    J[si, sj] += dkl * np.einsum("xyzw,zw->xy", block, D[sk, sl])
    if (i, j) != (k, l):
        J[sk, sl] += dij * np.einsum("xyzw,xy->zw", block, D[si, sj])


def reflect_triangle(J: np.ndarray) -> np.ndarray:
    """Restore a full symmetric matrix from an upper-triangle build."""
    return np.triu(J) + np.triu(J, 1).T


def coulomb_from_tensor(eri: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Coulomb matrix J_pq = sum_rs (pq|rs) D_rs."""
    return np.einsum("pqrs,rs->pq", eri, D, optimize=True)


def exchange_from_tensor(eri: np.ndarray, D: np.ndarray) -> np.ndarray:
    """Exchange matrix K_pq = sum_rs (pr|qs) D_rs."""
    return np.einsum("prqs,rs->pq", eri, D, optimize=True)


def jk_from_tensor(eri: np.ndarray, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Both J and K from an in-core ERI tensor."""
    return coulomb_from_tensor(eri, D), exchange_from_tensor(eri, D)


class DirectJKBuilder:
    """Integral-direct J/K builds with Cauchy-Schwarz + density screening.

    The quartet loop walks unique shell quartets (8-fold symmetry),
    skips those with ``Q_ij * Q_kl * max|D| < eps``, and scatters each
    computed block into all symmetry-related positions of J and K.
    ``eps`` is the paper's controllable-accuracy threshold.

    Execution behavior (executor, pool size, telemetry sinks) comes
    from one :class:`repro.runtime.ExecutionConfig` value.
    ``executor="process"`` evaluates the surviving quartets on a
    persistent :class:`repro.runtime.pool.ExchangeWorkerPool` instead of
    in-process.  Screening stays in the parent, so both executors walk
    the identical quartet list; only the evaluation site changes.  An
    externally owned pool can be shared (e.g. across the SCFs of an MD
    trajectory); otherwise the builder spawns and owns one.

    The legacy ``executor=``/``nworkers=`` kwargs still work behind a
    deprecation shim.
    """

    def __init__(self, basis: BasisSet, eps: float = 1e-10,
                 executor: str | None = None, nworkers: int | None = None,
                 pool=None, config=None):
        from ..runtime.execconfig import resolve_execution

        self.config = resolve_execution(config, executor=executor,
                                        nworkers=nworkers,
                                        owner="DirectJKBuilder")
        self.basis = basis
        self.eps = eps
        self.executor = self.config.executor
        self.engine = ERIEngine(basis)
        self.Q = self.engine.schwarz_bounds()
        self._keys = sorted(self.engine.pairs)
        self._keys_arr = np.asarray(self._keys, dtype=np.int64).reshape(-1, 2)
        self._qvals = np.array([self.Q[k] for k in self._keys])
        self.quartets_total = 0
        self.quartets_computed = 0
        self._pool = None
        self._owns_pool = False
        if self.executor == "process":
            from ..runtime.pool import ExchangeWorkerPool

            if pool is not None and pool.basis is not basis:
                pool.reset(basis)
            self._pool = pool or ExchangeWorkerPool(
                basis, nworkers=self.config.nworkers,
                timeout=self.config.pool_timeout)
            self._owns_pool = pool is None

    def close(self) -> None:
        """Release the worker pool if this builder owns one."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def _unique_quartets(self):
        keys = self._keys
        for a, brakey in enumerate(keys):
            for ketkey in keys[a:]:
                yield brakey, ketkey

    def build(self, D: np.ndarray, want_j: bool = True, want_k: bool = True
              ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Build J and/or K for density ``D`` (AO basis, symmetric)."""
        tr = self.config.trace
        with tr.span("jk.build", cat="scf", executor=self.executor):
            if self.executor == "process":
                return self._build_process(D, want_j, want_k)
            nbf = self.basis.nbf
            J = np.zeros((nbf, nbf)) if want_j else None
            K = np.zeros((nbf, nbf)) if want_k else None
            dmax = float(np.abs(D).max()) if D.size else 0.0
            nq_start = self.engine.quartets_computed
            # the vectorized screen walks bra pairs and surviving kets in
            # the same order (and with the same float test) as the older
            # fused quartet loop, so the accumulation order — and thus
            # the bitwise result — is unchanged
            with tr.span("jk.screen", cat="screening", eps=self.eps):
                pairs = self._screened_pairs(dmax)
            for (i, j, kets) in pairs:
                with tr.span("jk.quartet_batch", cat="quartets",
                             nkets=len(kets)):
                    for (k, l) in kets:
                        k, l = int(k), int(l)
                        block = self.engine.quartet(i, j, k, l)
                        if want_j:
                            scatter_coulomb(self.basis, J, block, D,
                                            (i, j, k, l))
                        if want_k:
                            # all distinct index permutations contribute
                            scatter_exchange(self.basis, K, block, D,
                                             (i, j, k, l))
            # the counter is derived from the engine (the single counted
            # evaluation path) rather than kept as separate bookkeeping
            self.quartets_computed = self.engine.quartets_computed - nq_start
            if want_j:
                with tr.span("jk.assemble", cat="scf"):
                    # the unique walk fills the upper shell triangle
                    # (i <= j); elementwise triangle reflection restores
                    # the full symmetric matrix (diagonal shell blocks
                    # are complete and symmetric already)
                    J = reflect_triangle(J)
            if tr.enabled:
                tr.metrics.count("jk.builds", 1)
                tr.metrics.count("jk.quartets", self.quartets_computed)
                tr.metrics.absorb_engine(self.engine)
            return J, K

    def _screened_pairs(self, dmax: float) -> list[tuple[int, int, np.ndarray]]:
        """Per-bra surviving ket lists under the density-aware screen.

        Uses the same float arithmetic as the serial loop's test so both
        executors keep or drop exactly the same boundary quartets.
        """
        out = []
        self.quartets_total = 0
        m = max(dmax, 1.0)
        for a, (i, j) in enumerate(self._keys):
            qk = self._qvals[a:]
            self.quartets_total += len(qk)
            keep = ~(self._qvals[a] * qk * m < self.eps)
            if keep.any():
                out.append((i, j, self._keys_arr[a:][keep]))
        return out

    def _build_process(self, D: np.ndarray, want_j: bool, want_k: bool
                       ) -> tuple[np.ndarray | None, np.ndarray | None]:
        from ..runtime.pool import RankJob

        tr = self.config.trace
        dmax = float(np.abs(D).max()) if D.size else 0.0
        with tr.span("jk.screen", cat="screening", eps=self.eps):
            pairs = self._screened_pairs(dmax)
        # one rank job per worker, balanced by surviving quartet count
        nw = self._pool.nworkers
        jobs = [RankJob(rank=w) for w in range(nw)]
        order = sorted(pairs, key=lambda p: -len(p[2]))
        loads = [0.0] * nw
        for p in order:
            w = min(range(nw), key=loads.__getitem__)
            jobs[w].pairs.append(p)
            jobs[w].cost += len(p[2])
            loads[w] = jobs[w].cost
        results, nq = self._pool.exchange(D, jobs, want_j=want_j,
                                          want_k=want_k, tracer=tr)
        self.engine.quartets_computed += nq
        self.quartets_computed = nq
        nbf = self.basis.nbf
        with tr.span("jk.assemble", cat="scf"):
            J = np.zeros((nbf, nbf)) if want_j else None
            K = np.zeros((nbf, nbf)) if want_k else None
            for Jw, Kw in results.values():
                if want_j:
                    J += Jw
                if want_k:
                    K += Kw
            if want_j:
                J = reflect_triangle(J)
        if tr.enabled:
            tr.metrics.count("jk.builds", 1)
            tr.metrics.count("jk.quartets", nq)
            tr.metrics.absorb_engine(self.engine)
        return J, K

    def _scatter_k(self, K, block, D, slices, idx):
        """Delegate to :func:`scatter_exchange` (kept as a method for
        API stability)."""
        scatter_exchange(self.basis, K, block, D, idx)

    def exchange_energy(self, D: np.ndarray) -> float:
        """E_x^HF = -1/4 Tr(K[D] D) for a closed-shell density D
        (D = 2 * C_occ C_occ^T)."""
        _, K = self.build(D, want_j=False, want_k=True)
        return -0.25 * float(np.einsum("pq,pq->", K, D))
