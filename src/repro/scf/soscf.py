"""Second-order SCF: Newton orbital optimization + ADIIS/EDIIS.

Every SCF iteration costs one J/K build — the exact operation the
paper distributes across millions of BG/Q threads — so cutting the
iteration count is the biggest remaining lever on time-to-solution.
This module supplies the two pieces of the accelerated convergence
stack the drivers dispatch on (``ExecutionConfig(scf_solver=...)``):

* :class:`ADIIS` / :class:`EDIIS` — energy-aware Fock interpolation
  over the *simplex* of stored iterates (coefficients are nonnegative
  and sum to one, so the interpolated state is always physical), which
  is what makes rough starting guesses tractable where plain DIIS
  oscillates;
* :class:`NewtonSOSCF` — a trust-radius Newton (augmented-Hessian
  family) orbital optimizer: the SCF energy is parametrized by an
  anti-symmetric occupied-virtual rotation ``C(kappa) = C exp(kappa)``
  and each macro-iteration solves the Newton equations
  ``H x = -g`` by preconditioned *truncated conjugate-gradient*
  micro-iterations (Steihaug-Toint: stop at the trust boundary or at
  negative curvature).  Every Hessian-vector product costs one J/K
  *response* build of a rank-limited perturbation density — routed
  through the same builders as the Fock build, so the process pool,
  the batched kernel, and screening all ride along for free.

Closed-shell formulas (spin-summed, real orbitals; ``F`` in MO basis,
``a,b`` virtual, ``i,j`` occupied):

    g_ai      = 4 F_ai
    (H x)_ai  = 4 (F_ab x_bi - x_aj F_ji) + 8 [C_v^T G(d) C_o]_ai
    d         = C_v x C_o^T + C_o x^T C_v^T
    G(d)      = J(d) - 0.5 * a_hfx * K(d)

For hybrid/semilocal DFT the two-electron response gains the XC-kernel
term ``f_xc[D]·d``, evaluated seminumerically by the Kohn-Sham driver
(a central finite difference of the grid potential around the base
density ``D`` — see :meth:`repro.scf.dft.RKS._soscf_response`); the
Hessian is then exact to finite-difference accuracy and macro
convergence stays quadratic for PBE/PBE0, not just for Hartree-Fock.

The solver is :class:`repro.runtime.Restartable`: its adaptive state
(trust radius, cumulative build/micro counters) survives
checkpoint/restore, so an MD trajectory's SOSCF warm starts resume
exactly where the killed run left off.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla
import scipy.optimize as sopt

from ..runtime.checkpoint import CheckpointError

__all__ = ["ADIIS", "EDIIS", "NewtonSOSCF"]

#: Commutator-norm threshold below which the rough (ADIIS/EDIIS or
#: DIIS) phase hands the SCF to the Newton solver.  Tuned on the
#: electrolyte test set: a later handoff wastes rough iterations that
#: Newton would cover quadratically, a much earlier one risks dropping
#: the solver into the basin of a metastable saddle.
DEFAULT_HANDOFF = 0.15

#: Trust-radius schedule (Frobenius norm of the orbital-rotation step,
#: radians-like units).
TRUST_START, TRUST_MIN, TRUST_MAX = 0.4, 1e-3, 1.0

#: Floor on the diagonal-Hessian preconditioner (4*(eps_a - eps_i)
#: units): keeps near-degenerate frontier pairs from blowing up the
#: first CG direction.
HDIAG_MIN = 0.2


def _trace_dot(a: np.ndarray, b: np.ndarray) -> float:
    """<A, B> = sum_pq A_pq B_pq (both symmetric here)."""
    return float(np.vdot(a, b))


class _SimplexFock:
    """Shared machinery of ADIIS/EDIIS: store ``(D, F, E)`` iterates,
    minimize the subclass objective over the coefficient simplex, and
    hand back the interpolated Fock matrix.

    The simplex constraint is enforced by the smooth substitution
    ``c_k = t_k^2 / sum(t^2)`` so an unconstrained BFGS solves the
    (small, dense) minimization; both the uniform start and the best
    single-iterate vertex are tried and the lower objective wins.
    """

    def __init__(self, max_vec: int = 6):
        if max_vec < 2:
            raise ValueError(f"{type(self).__name__} needs max_vec >= 2")
        self.max_vec = max_vec
        self._D: list[np.ndarray] = []
        self._F: list[np.ndarray] = []
        self._E: list[float] = []

    @property
    def nvec(self) -> int:
        """Number of stored iterates."""
        return len(self._F)

    def push(self, D: np.ndarray, F: np.ndarray, energy: float) -> None:
        """Add a density/Fock/energy triple, evicting the oldest."""
        self._D.append(D.copy())
        self._F.append(F.copy())
        self._E.append(float(energy))
        if len(self._F) > self.max_vec:
            self._D.pop(0)
            self._F.pop(0)
            self._E.pop(0)

    def _objective(self, c: np.ndarray) -> float:
        raise NotImplementedError

    def coefficients(self) -> np.ndarray:
        """Simplex coefficients minimizing the subclass objective."""
        n = self.nvec
        if n == 0:
            raise RuntimeError(
                f"{type(self).__name__}: no iterates stored — push() "
                f"at least one (D, F, E) triple first")
        if n == 1:
            return np.ones(1)

        def f(t):
            t2 = t * t
            return self._objective(t2 / t2.sum())

        starts = [np.ones(n)]
        vertex = int(np.argmin([self._objective(np.eye(n)[k])
                                for k in range(n)]))
        e = np.full(n, 1e-4)
        e[vertex] = 1.0
        starts.append(e)
        best_c, best_f = None, np.inf
        for t0 in starts:
            res = sopt.minimize(f, t0, method="BFGS",
                                options={"gtol": 1e-10, "maxiter": 200})
            t2 = res.x * res.x
            s = t2.sum()
            if not np.isfinite(s) or s <= 0.0:
                continue
            c = t2 / s
            val = self._objective(c)
            if val < best_f:
                best_c, best_f = c, val
        if best_c is None:      # pathological optimizer failure
            best_c = np.zeros(n)
            best_c[-1] = 1.0
        return best_c

    def fock(self) -> np.ndarray:
        """The interpolated Fock matrix ``sum_i c_i F_i``."""
        c = self.coefficients()
        out = np.zeros_like(self._F[-1])
        for ck, Fk in zip(c, self._F):
            out += ck * Fk
        return out


class ADIIS(_SimplexFock):
    """Augmented-Roothaan-Hall DIIS (Hu & Yang, JCP 132, 054109, 2010).

    Minimizes ``f(c) = 2 sum_i c_i <D_i - D_n, F_n>
    + sum_ij c_i c_j <D_i - D_n, F_j - F_n>`` over the simplex — an
    energy-function model anchored at the *latest* iterate, which makes
    it the robust default for rough starting guesses.
    """

    def _objective(self, c: np.ndarray) -> float:
        n = self.nvec
        Dn, Fn = self._D[-1], self._F[-1]
        d = np.array([_trace_dot(self._D[i] - Dn, Fn) for i in range(n)])
        B = np.empty((n, n))
        dD = [self._D[i] - Dn for i in range(n)]
        dF = [self._F[j] - Fn for j in range(n)]
        for i in range(n):
            for j in range(n):
                B[i, j] = _trace_dot(dD[i], dF[j])
        return float(2.0 * c @ d + c @ B @ c)


class EDIIS(_SimplexFock):
    """Energy-DIIS (Kudin, Scuseria & Cancès, JCP 116, 8255, 2002).

    Minimizes ``f(c) = sum_i c_i E_i
    - 1/2 sum_ij c_i c_j <D_i - D_j, F_i - F_j>`` over the simplex —
    interpolating the actual SCF energies, which damps the large
    oscillations of a far-from-converged start.
    """

    def _objective(self, c: np.ndarray) -> float:
        n = self.nvec
        E = np.asarray(self._E)
        B = np.empty((n, n))
        for i in range(n):
            B[i, i] = 0.0
            for j in range(i + 1, n):
                B[i, j] = B[j, i] = _trace_dot(
                    self._D[i] - self._D[j], self._F[i] - self._F[j])
        return float(c @ E - 0.5 * c @ B @ c)


class NewtonSOSCF:
    """Trust-radius Newton orbital optimizer (macro/micro iterations).

    Parameters
    ----------
    fock_energy:
        ``fock_energy(D) -> (F, energy, exchange_energy)`` — one full
        Fock build at density ``D`` (the expensive operation; counted
        in :attr:`fock_builds`).
    response:
        ``response(d, D) -> G(d)`` — the two-electron response of a
        (symmetric, not necessarily idempotent) perturbation density
        ``d`` around the base density ``D``:
        ``J(d) - 0.5*a_hfx*K(d)`` plus, for Kohn-Sham, the XC-kernel
        term ``f_xc[D]·d``.  One call per CG micro-iteration (counted
        in :attr:`micro_iters`).
    S, X:
        AO overlap and (possibly rectangular, lin-dep-projected)
        orthogonalizer — used for the commutator convergence measure,
        identical to the DIIS loop's.
    nocc:
        Doubly occupied orbital count.
    conv_tol:
        Max-abs commutator threshold (same measure as the DIIS loop).
    trace:
        Telemetry tracer (``None``/NullTracer for the silent path).
    """

    def __init__(self, fock_energy, response, S: np.ndarray, X: np.ndarray,
                 nocc: int, conv_tol: float = 1e-8, max_micro: int = 16,
                 trace=None):
        from ..runtime.telemetry import NULL_TRACER

        self.fock_energy = fock_energy
        self.response = response
        self.S = S
        self.X = X
        self.nocc = nocc
        self.conv_tol = conv_tol
        self.max_micro = max_micro
        self.trace = trace if trace is not None else NULL_TRACER
        # adaptive/cumulative state (Restartable)
        self.trust_radius = TRUST_START
        self.fock_builds = 0
        self.micro_iters = 0
        self.macro_iters = 0
        self.rejected_steps = 0

    # --- Restartable protocol -------------------------------------------------

    def get_state(self) -> dict:
        """Adaptive trust radius + cumulative counters (picklable)."""
        return {
            "kind": "soscf",
            "trust_radius": float(self.trust_radius),
            "fock_builds": int(self.fock_builds),
            "micro_iters": int(self.micro_iters),
            "macro_iters": int(self.macro_iters),
            "rejected_steps": int(self.rejected_steps),
        }

    def set_state(self, state: dict) -> None:
        """Resume the adaptive state of a snapshotted solver."""
        if not isinstance(state, dict) or state.get("kind") != "soscf":
            raise CheckpointError(
                f"NewtonSOSCF: snapshot holds "
                f"{state.get('kind') if isinstance(state, dict) else state!r}"
                f" state, not 'soscf'")
        tr = float(state.get("trust_radius", TRUST_START))
        if not np.isfinite(tr) or tr <= 0.0:
            raise CheckpointError(
                f"NewtonSOSCF: snapshot trust radius {tr!r} is not a "
                f"positive finite number")
        self.trust_radius = min(max(tr, TRUST_MIN), TRUST_MAX)
        self.fock_builds = int(state.get("fock_builds", 0))
        self.micro_iters = int(state.get("micro_iters", 0))
        self.macro_iters = int(state.get("macro_iters", 0))
        self.rejected_steps = int(state.get("rejected_steps", 0))

    # --- linear algebra helpers ----------------------------------------------

    def _commutator_norm(self, F: np.ndarray, D: np.ndarray) -> float:
        X, S = self.X, self.S
        err = X.T @ (F @ D @ S - S @ D @ F) @ X
        return float(np.abs(err).max())

    def _rotate(self, C: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Apply the occupied-virtual rotation ``C exp(kappa(x))``."""
        nmo = C.shape[1]
        no = self.nocc
        kappa = np.zeros((nmo, nmo))
        kappa[no:, :no] = x
        kappa[:no, no:] = -x.T
        return C @ sla.expm(kappa)

    def _hvp(self, x: np.ndarray, F_mo: np.ndarray, C: np.ndarray,
             D: np.ndarray) -> np.ndarray:
        """Hessian-vector product ``(H x)_ai`` (one response build);
        ``D`` is the base density the response differentiates around
        (used by the Kohn-Sham XC-kernel term)."""
        no = self.nocc
        Co, Cv = C[:, :no], C[:, no:]
        one = 4.0 * (F_mo[no:, no:] @ x - x @ F_mo[:no, :no])
        half = Cv @ x @ Co.T
        d = half + half.T
        with self.trace.span("soscf.response", cat="soscf"):
            G = self.response(d, D)
        self.micro_iters += 1
        self.trace.count("scf.micro_iters", 1)
        return one + 8.0 * (Cv.T @ G @ Co)

    def _solve_step(self, g: np.ndarray, F_mo: np.ndarray, C: np.ndarray,
                    D: np.ndarray, hdiag: np.ndarray, radius: float,
                    rtol: float) -> tuple[np.ndarray, float, bool]:
        """Truncated-CG (Steihaug-Toint) solve of ``H x = -g`` inside
        the trust region.

        Returns ``(x, predicted_reduction, hit_boundary)``; the
        predicted reduction uses the CG identity
        ``m(x) = (g.x - x.r) / 2`` so no extra Hessian product is
        spent on bookkeeping.
        """
        x = np.zeros_like(g)
        r = -g.copy()
        z = r / hdiag
        p = z.copy()
        rz = float(np.vdot(r, z))
        gnorm = float(np.linalg.norm(g))
        hit_boundary = False
        for _ in range(self.max_micro):
            Hp = self._hvp(p, F_mo, C, D)
            pHp = float(np.vdot(p, Hp))
            if pHp <= 1e-12 * float(np.vdot(p, p)):
                # near-zero/negative curvature.  With a partial Newton
                # step already in hand, keep it — the classic
                # follow-p-to-the-boundary exit hurls an
                # almost-converged state along a flat mode (degenerate
                # frontier pairs) and costs macro-iterations to
                # recover.  From x = 0 the preconditioned gradient is
                # the safe direction: small near convergence, and far
                # out it reaches the boundary anyway (saddle escape).
                if float(np.vdot(x, x)) > 0.0:
                    break
                pn = float(np.linalg.norm(p))
                if pn > radius:
                    x = (radius / pn) * p
                    hit_boundary = True
                else:
                    x = p.copy()
                break
            alpha = rz / pHp
            x_new = x + alpha * p
            if float(np.linalg.norm(x_new)) >= radius:
                x = self._to_boundary(x, p, radius)
                hit_boundary = True
                break
            x = x_new
            r = r - alpha * Hp
            if float(np.linalg.norm(r)) <= rtol * gnorm:
                break
            z = r / hdiag
            rz_new = float(np.vdot(r, z))
            p = z + (rz_new / rz) * p
            rz = rz_new
        pred = 0.5 * (float(np.vdot(g, x)) - float(np.vdot(x, r)))
        return x, pred, hit_boundary

    @staticmethod
    def _to_boundary(x: np.ndarray, p: np.ndarray,
                     radius: float) -> np.ndarray:
        """The point ``x + tau*p`` (tau > 0) on the trust boundary."""
        xx = float(np.vdot(x, x))
        xp = float(np.vdot(x, p))
        pp = float(np.vdot(p, p))
        if pp <= 0.0:
            return x
        disc = max(xp * xp + pp * (radius * radius - xx), 0.0)
        tau = (-xp + np.sqrt(disc)) / pp
        return x + tau * p

    # --- the macro loop -------------------------------------------------------

    def solve(self, C: np.ndarray, max_macro: int, history: list[float],
              state: tuple | None = None) -> dict:
        """Newton-iterate from orbitals ``C`` until the commutator norm
        drops below ``conv_tol`` (or ``max_macro`` is exhausted).

        ``state`` optionally carries an already-built
        ``(F, energy, exchange_energy)`` for the density ``C`` implies
        (the rough phase just paid for that build — no reason to spend
        another Fock build re-deriving it).

        Appends the energy of every macro-iteration to ``history`` and
        returns the final state as a dict: ``converged``, ``niter``
        (macro count this solve), ``C``, ``D``, ``F``, ``energy``,
        ``exchange_energy``.
        """
        no = self.nocc
        tr = self.trace
        D = 2.0 * C[:, :no] @ C[:, :no].T
        if state is not None:
            F, energy, ex_energy = state
        else:
            with tr.span("soscf.fock", cat="soscf"):
                F, energy, ex_energy = self.fock_energy(D)
            self.fock_builds += 1
            tr.count("scf.fock_builds", 1)
        converged = False
        it = 0
        for it in range(1, max_macro + 1):
            with tr.span("soscf.macro", cat="soscf", it=it):
                self.macro_iters += 1
                history.append(energy)
                err_norm = self._commutator_norm(F, D)
                if err_norm < self.conv_tol:
                    converged = True
                    break
                F_mo = C.T @ F @ C
                g = 4.0 * F_mo[no:, :no]
                fd = np.diag(F_mo)
                hdiag = np.maximum(
                    4.0 * (fd[no:, None] - fd[None, :no]), HDIAG_MIN)
                # inexact-Newton forcing: solve loosely far out, tightly
                # near the solution (keeps micro builds proportionate)
                rtol = min(0.1, err_norm)
                # near-flat Hessian modes (degenerate frontier pairs,
                # e.g. the Li2O2 pi* manifold) make Steihaug's
                # negative-curvature exit jump to the full boundary from
                # an almost-converged point; capping the radius at the
                # steepest-descent scale bounds that excursion while
                # leaving the far-from-convergence globalization alone
                cap = max(10.0 * float(np.linalg.norm(g)), TRUST_MIN)
                accepted = False
                trial = None
                for _ in range(3):
                    radius = min(self.trust_radius, cap)
                    with tr.span("soscf.micro", cat="soscf"):
                        x, pred, boundary = self._solve_step(
                            g, F_mo, C, D, hdiag, radius, rtol)
                    C_t = self._rotate(C, x)
                    D_t = 2.0 * C_t[:, :no] @ C_t[:, :no].T
                    with tr.span("soscf.fock", cat="soscf"):
                        F_t, E_t, ex_t = self.fock_energy(D_t)
                    self.fock_builds += 1
                    tr.count("scf.fock_builds", 1)
                    trial = (C_t, D_t, F_t, E_t, ex_t)
                    dE = E_t - energy
                    ok = dE <= 1e-11
                    if ok and dE > -1e-10:
                        # iso-energetic step: motion along a flat mode
                        # (degenerate frontier manifold) gains nothing
                        # and can drift the commutator back up — only
                        # accept it if the commutator stays in check
                        ok = self._commutator_norm(F_t, D_t) \
                            <= 3.0 * err_norm
                    if ok:
                        rho = dE / pred if pred < 0.0 else 1.0
                        if rho < 0.25:
                            self.trust_radius = max(
                                0.5 * self.trust_radius, TRUST_MIN)
                        elif rho > 0.75 and boundary:
                            self.trust_radius = min(
                                2.0 * self.trust_radius, TRUST_MAX)
                        accepted = True
                        break
                    # energy rose (or a flat-mode drift): the quadratic
                    # model overreached — shrink the region and re-solve
                    # the same equations
                    self.rejected_steps += 1
                    tr.count("scf.rejected_steps", 1)
                    self.trust_radius = max(
                        0.25 * self.trust_radius, TRUST_MIN)
                # at the minimum radius every step is tiny; taking the
                # last trial bounds the worst case (a stray ~1e-11
                # energy-noise rejection) instead of spinning in place
                C, D, F, energy, ex_energy = trial
        return {
            "converged": converged, "niter": it, "C": C, "D": D, "F": F,
            "energy": energy, "exchange_energy": ex_energy,
        }
