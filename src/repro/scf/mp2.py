"""MP2 correlation energy on top of a converged RHF reference.

Not part of the paper's method (PBE0 is), but the standard sanity check for
any integral/SCF stack: the MO transformation exercises every ERI, and
the closed-shell MP2 energy has well-known reference values.
"""

from __future__ import annotations

import numpy as np

from ..integrals import eri_tensor
from .rhf import SCFResult

__all__ = ["ao_to_mo", "mp2_energy"]


def ao_to_mo(eri_ao: np.ndarray, C: np.ndarray) -> np.ndarray:
    """Four-index transformation (pq|rs) -> (ij|kl) in O(N^5)."""
    tmp = np.einsum("pqrs,pi->iqrs", eri_ao, C, optimize=True)
    tmp = np.einsum("iqrs,qj->ijrs", tmp, C, optimize=True)
    tmp = np.einsum("ijrs,rk->ijks", tmp, C, optimize=True)
    return np.einsum("ijks,sl->ijkl", tmp, C, optimize=True)


def mp2_energy(res: SCFResult, eri_ao: np.ndarray | None = None) -> float:
    """Closed-shell MP2 correlation energy (Hartree).

    E(2) = sum_{ijab} (ia|jb) [2 (ia|jb) - (ib|ja)]
                      / (e_i + e_j - e_a - e_b)
    over occupied i,j and virtual a,b spatial orbitals.
    """
    if eri_ao is None:
        eri_ao = eri_tensor(res.basis)
    nocc = res.nocc
    nbf = res.basis.nbf
    if nocc >= nbf:
        return 0.0   # no virtuals in a minimal-basis edge case
    mo = ao_to_mo(eri_ao, res.C)
    eps = res.eps
    o = slice(0, nocc)
    v = slice(nocc, nbf)
    ovov = mo[o, v, o, v]                      # (ia|jb)
    e_o = eps[o]
    e_v = eps[v]
    denom = (e_o[:, None, None, None] - e_v[None, :, None, None]
             + e_o[None, None, :, None] - e_v[None, None, None, :])
    num = ovov * (2.0 * ovov - ovov.transpose(0, 3, 2, 1))
    return float((num / denom).sum())
