"""Unrestricted Hartree-Fock for open-shell species.

The lithium/air problem is full of radicals — superoxide O2^-, LiO2,
atomic Li — and the paper's MD treats them spin-unrestricted.  This
driver provides the same machinery as :class:`~repro.scf.rhf.RHF` for
arbitrary spin multiplicities: separate alpha/beta Fock operators,
commutator-DIIS on the stacked spin blocks, level shifting, and the
spin-contamination diagnostic <S^2>.

Execution rides the same :class:`repro.runtime.ExecutionConfig` as the
restricted driver: ``mode="direct"`` builds J/K through a
:class:`~repro.scf.fock.DirectJKBuilder` (quartet walk, optionally on
the worker pool) or, with ``jk="ri"``, through a
:class:`~repro.scf.ri_jk.RIJKBuilder` whose fitted tensor is shared by
the J build and *both* spin exchange builds of every iteration.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..basis.basisset import BasisSet, build_basis
from ..chem.molecule import Molecule, nuclear_repulsion
from ..integrals import (eri_tensor, kinetic_matrix, nuclear_matrix,
                         overlap_matrix)
from .diis import DIIS
from .fock import DirectJKBuilder, coulomb_from_tensor, exchange_from_tensor
from .guess import orthogonalizer

__all__ = ["UHFResult", "UHF", "run_uhf"]


@dataclass
class UHFResult:
    """Converged (or best-effort) unrestricted SCF state."""

    energy: float
    energy_nuc: float
    converged: bool
    niter: int
    C_a: np.ndarray
    C_b: np.ndarray
    eps_a: np.ndarray
    eps_b: np.ndarray
    D_a: np.ndarray
    D_b: np.ndarray
    S: np.ndarray
    basis: BasisSet
    nalpha: int
    nbeta: int
    history: list[float] = field(default_factory=list)
    solver: str = "diis"
    fock_builds: int = 0
    wall_s: float = 0.0

    @property
    def D_total(self) -> np.ndarray:
        """Total (spin-summed) density matrix."""
        return self.D_a + self.D_b

    @property
    def spin_density(self) -> np.ndarray:
        """Spin density matrix D_a - D_b."""
        return self.D_a - self.D_b

    def s_squared(self) -> float:
        """<S^2> including the contamination term.

        Exact value for a pure state: S(S+1) with S = (na - nb)/2.
        """
        na, nb = self.nalpha, self.nbeta
        s = 0.5 * (na - nb)
        exact = s * (s + 1.0)
        # overlap of alpha and beta occupied orbitals
        Sab = self.C_a[:, :na].T @ self.S @ self.C_b[:, :nb]
        contamination = nb - float((Sab * Sab).sum())
        return exact + contamination

    def summary(self) -> dict:
        """Compact scalar surface, same envelope as the RHF result
        (schema-versioned; see :mod:`repro.runtime.schema`)."""
        from ..runtime.schema import result_envelope

        return result_envelope(
            "scf", wall_s=self.wall_s,
            counters={
                "scf.fock_builds": int(self.fock_builds),
                "scf.niter": int(self.niter),
            },
            energy=float(self.energy),
            energy_nuc=float(self.energy_nuc),
            converged=bool(self.converged),
            niter=int(self.niter),
            nbf=int(self.basis.nbf),
            nalpha=int(self.nalpha),
            nbeta=int(self.nbeta),
            s_squared=float(self.s_squared()),
            solver=str(self.solver),
            fock_builds=int(self.fock_builds),
        )


class UHF:
    """Unrestricted Hartree-Fock driver.

    Parameters mirror :class:`~repro.scf.rhf.RHF` (``mode``/``config``/
    ``jk_pool`` select in-core vs direct vs fitted integral plumbing);
    ``break_symmetry`` mixes the alpha HOMO/LUMO of the initial guess,
    which lets singlet-biradical states escape the restricted solution.
    """

    def __init__(self, mol: Molecule, basis: str | BasisSet = "sto-3g",
                 mode: str = "incore",
                 conv_tol: float = 1e-8, max_iter: int = 150,
                 diis_size: int = 8, level_shift: float = 0.0,
                 break_symmetry: bool = False, screen_eps: float = 1e-10,
                 jk_pool=None, config=None):
        from ..runtime.execconfig import resolve_execution

        nel = mol.nelectron
        nunpaired = mol.multiplicity - 1
        if (nel - nunpaired) % 2 != 0 or nunpaired > nel:
            raise ValueError(
                f"multiplicity {mol.multiplicity} is impossible for "
                f"{nel} electrons")
        if mode not in ("incore", "direct"):
            raise ValueError(f"mode must be 'incore' or 'direct', got {mode!r}")
        self.config = resolve_execution(config, owner="UHF")
        if self.config.scf_solver != "diis":
            raise ValueError("UHF implements the DIIS reference loop only; "
                             "the Newton solver's rotation parametrization "
                             "is closed-shell")
        if self.config.executor == "process" and mode != "direct":
            raise ValueError("executor='process' requires mode='direct' "
                             "(the in-core tensor path has no quartet loop "
                             "to distribute)")
        if self.config.jk == "ri" and mode != "direct":
            raise ValueError("jk='ri' requires mode='direct' (the in-core "
                             "path materializes the exact 4-index tensor)")
        self.mol = mol
        self.basis = basis if isinstance(basis, BasisSet) \
            else build_basis(mol, basis)
        self.mode = mode
        self.screen_eps = screen_eps
        self.nalpha = (nel + nunpaired) // 2
        self.nbeta = (nel - nunpaired) // 2
        self.conv_tol = conv_tol
        self.max_iter = max_iter
        self.diis_size = diis_size
        self.level_shift = level_shift
        self.break_symmetry = break_symmetry
        self.jk_pool = jk_pool
        self._eri = None
        self._direct = None

    # --- integral plumbing ---------------------------------------------------

    def _setup_jk(self) -> None:
        if self.mode == "incore":
            self._eri = eri_tensor(self.basis)
        elif self.config.jk == "ri":
            from .ri_jk import RIJKBuilder

            self._direct = RIJKBuilder(self.basis, eps=self.screen_eps,
                                       config=self.config, pool=self.jk_pool)
        else:
            self._direct = DirectJKBuilder(self.basis, eps=self.screen_eps,
                                           config=self.config,
                                           pool=self.jk_pool)

    def _build_jk(self, Da: np.ndarray, Db: np.ndarray
                  ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(J[Da+Db], K[Da], K[Db])`` for the current spin densities."""
        if self.mode == "incore":
            Dt = Da + Db
            return (coulomb_from_tensor(self._eri, Dt),
                    exchange_from_tensor(self._eri, Da),
                    exchange_from_tensor(self._eri, Db))
        J, _ = self._direct.build(Da + Db, want_k=False)
        _, Ka = self._direct.build(Da, want_j=False)
        _, Kb = self._direct.build(Db, want_j=False)
        return J, Ka, Kb

    # --- SCF loop ------------------------------------------------------------

    def run(self, D0: tuple[np.ndarray, np.ndarray] | None = None
            ) -> UHFResult:
        """Iterate the unrestricted SCF equations to self-consistency."""
        t0 = time.perf_counter()
        tr = self.config.trace
        with tr.span("scf.setup", cat="scf", mode=self.mode,
                     nbf=self.basis.nbf):
            S = overlap_matrix(self.basis)
            hcore = kinetic_matrix(self.basis) + nuclear_matrix(self.basis)
            self._setup_jk()
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        na, nb = self.nalpha, self.nbeta

        def make_density(C, nocc):
            return C[:, :nocc] @ C[:, :nocc].T

        if D0 is not None:
            Da, Db = D0[0].copy(), D0[1].copy()
            Ca = Cb = None
            eps_a = eps_b = None
        else:
            f = X.T @ hcore @ X
            eps_a, Cp = np.linalg.eigh(f)
            Ca = X @ Cp
            Cb = Ca.copy()
            eps_b = eps_a.copy()
            if self.break_symmetry and na < Ca.shape[1]:
                theta = 0.25 * np.pi / 2
                h, l = Ca[:, na - 1].copy(), Ca[:, na].copy()
                Ca[:, na - 1] = np.cos(theta) * h + np.sin(theta) * l
                Ca[:, na] = -np.sin(theta) * h + np.cos(theta) * l
            Da = make_density(Ca, na)
            Db = make_density(Cb, nb)

        diis = DIIS(self.diis_size)
        nbf = self.basis.nbf
        energy = 0.0
        history: list[float] = []
        converged = False
        fock_builds = 0
        it = 0
        try:
            for it in range(1, self.max_iter + 1):
                with tr.span("scf.iteration", cat="scf", it=it):
                    Dt = Da + Db
                    J, Ka, Kb = self._build_jk(Da, Db)
                    fock_builds += 1
                    Fa = hcore + J - Ka
                    Fb = hcore + J - Kb
                    e_el = 0.5 * float(np.einsum("pq,pq->", Dt, hcore)
                                       + np.einsum("pq,pq->", Da, Fa)
                                       + np.einsum("pq,pq->", Db, Fb))
                    energy = e_el + enuc
                    history.append(energy)
                    err_a = X.T @ (Fa @ Da @ S - S @ Da @ Fa) @ X
                    err_b = X.T @ (Fb @ Db @ S - S @ Db @ Fb) @ X
                    err = np.vstack([err_a, err_b])
                    stacked = np.vstack([Fa, Fb])
                    with tr.span("scf.diis", cat="diis"):
                        diis.push(stacked, err)
                    may_exit = D0 is None or it > 1
                    if may_exit and diis.error_norm() < self.conv_tol:
                        converged = True
                        break
                    with tr.span("scf.update", cat="scf"):
                        Fd = diis.extrapolate()
                        Fa_d, Fb_d = Fd[:nbf], Fd[nbf:]

                        def advance(F, D_old, nocc):
                            f = X.T @ F @ X
                            if self.level_shift > 0.0:
                                proj = X.T @ S @ D_old @ S @ X
                                f = f + self.level_shift * (
                                    np.eye(f.shape[0]) - proj)
                            eps, Cp = np.linalg.eigh(f)
                            C = X @ Cp
                            return make_density(C, nocc), C, eps

                        Da, Ca, eps_a = advance(Fa_d, Da, na)
                        Db, Cb, eps_b = advance(Fb_d, Db, nb)
        finally:
            # a pool this run spawned dies with the run; an external
            # jk_pool is left running for the caller to reuse
            if self._direct is not None:
                self._direct.close()
        if tr.enabled:
            tr.metrics.set("scf.niter", it)
            tr.metrics.set("scf.converged", int(converged))
            tr.metrics.count("scf.fock_builds", fock_builds)
        # canonicalize against the final Fock matrices (the loop's
        # orbitals lag one iteration behind; see RHF.run)
        _, Ca, eps_a = self._final_orbitals(Fa, X)
        _, Cb, eps_b = self._final_orbitals(Fb, X)
        return UHFResult(
            energy=energy, energy_nuc=enuc, converged=converged, niter=it,
            C_a=Ca, C_b=Cb, eps_a=eps_a, eps_b=eps_b, D_a=Da, D_b=Db,
            S=S, basis=self.basis, nalpha=na, nbeta=nb, history=history,
            solver=self.config.scf_solver, fock_builds=fock_builds,
            wall_s=time.perf_counter() - t0,
        )

    @staticmethod
    def _final_orbitals(F, X):
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        return None, X @ Cp, eps


def run_uhf(mol: Molecule, basis: str = "sto-3g", **kw) -> UHFResult:
    """One-call UHF."""
    return UHF(mol, basis, **kw).run()
