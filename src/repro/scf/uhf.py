"""Unrestricted Hartree-Fock for open-shell species.

The lithium/air problem is full of radicals — superoxide O2^-, LiO2,
atomic Li — and the paper's MD treats them spin-unrestricted.  This
driver provides the same machinery as :class:`~repro.scf.rhf.RHF` for
arbitrary spin multiplicities: separate alpha/beta Fock operators,
commutator-DIIS on the stacked spin blocks, level shifting, and the
spin-contamination diagnostic <S^2>.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..basis.basisset import BasisSet, build_basis
from ..chem.molecule import Molecule, nuclear_repulsion
from ..integrals import (eri_tensor, kinetic_matrix, nuclear_matrix,
                         overlap_matrix)
from .diis import DIIS
from .fock import coulomb_from_tensor, exchange_from_tensor
from .guess import orthogonalizer

__all__ = ["UHFResult", "UHF", "run_uhf"]


@dataclass
class UHFResult:
    """Converged (or best-effort) unrestricted SCF state."""

    energy: float
    energy_nuc: float
    converged: bool
    niter: int
    C_a: np.ndarray
    C_b: np.ndarray
    eps_a: np.ndarray
    eps_b: np.ndarray
    D_a: np.ndarray
    D_b: np.ndarray
    S: np.ndarray
    basis: BasisSet
    nalpha: int
    nbeta: int
    history: list[float] = field(default_factory=list)

    @property
    def D_total(self) -> np.ndarray:
        """Total (spin-summed) density matrix."""
        return self.D_a + self.D_b

    @property
    def spin_density(self) -> np.ndarray:
        """Spin density matrix D_a - D_b."""
        return self.D_a - self.D_b

    def s_squared(self) -> float:
        """<S^2> including the contamination term.

        Exact value for a pure state: S(S+1) with S = (na - nb)/2.
        """
        na, nb = self.nalpha, self.nbeta
        s = 0.5 * (na - nb)
        exact = s * (s + 1.0)
        # overlap of alpha and beta occupied orbitals
        Sab = self.C_a[:, :na].T @ self.S @ self.C_b[:, :nb]
        contamination = nb - float((Sab * Sab).sum())
        return exact + contamination


class UHF:
    """Unrestricted Hartree-Fock driver (in-core ERIs).

    Parameters mirror :class:`~repro.scf.rhf.RHF`; ``break_symmetry``
    mixes the alpha HOMO/LUMO of the initial guess, which lets
    singlet-biradical states escape the restricted solution.
    """

    def __init__(self, mol: Molecule, basis: str | BasisSet = "sto-3g",
                 conv_tol: float = 1e-8, max_iter: int = 150,
                 diis_size: int = 8, level_shift: float = 0.0,
                 break_symmetry: bool = False):
        nel = mol.nelectron
        nunpaired = mol.multiplicity - 1
        if (nel - nunpaired) % 2 != 0 or nunpaired > nel:
            raise ValueError(
                f"multiplicity {mol.multiplicity} is impossible for "
                f"{nel} electrons")
        self.mol = mol
        self.basis = basis if isinstance(basis, BasisSet) \
            else build_basis(mol, basis)
        self.nalpha = (nel + nunpaired) // 2
        self.nbeta = (nel - nunpaired) // 2
        self.conv_tol = conv_tol
        self.max_iter = max_iter
        self.diis_size = diis_size
        self.level_shift = level_shift
        self.break_symmetry = break_symmetry

    def run(self, D0: tuple[np.ndarray, np.ndarray] | None = None
            ) -> UHFResult:
        """Iterate the unrestricted SCF equations to self-consistency."""
        S = overlap_matrix(self.basis)
        hcore = kinetic_matrix(self.basis) + nuclear_matrix(self.basis)
        eri = eri_tensor(self.basis)
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        na, nb = self.nalpha, self.nbeta

        def make_density(C, nocc):
            return C[:, :nocc] @ C[:, :nocc].T

        if D0 is not None:
            Da, Db = D0[0].copy(), D0[1].copy()
            Ca = Cb = None
            eps_a = eps_b = None
        else:
            f = X.T @ hcore @ X
            eps_a, Cp = np.linalg.eigh(f)
            Ca = X @ Cp
            Cb = Ca.copy()
            eps_b = eps_a.copy()
            if self.break_symmetry and na < Ca.shape[1]:
                theta = 0.25 * np.pi / 2
                h, l = Ca[:, na - 1].copy(), Ca[:, na].copy()
                Ca[:, na - 1] = np.cos(theta) * h + np.sin(theta) * l
                Ca[:, na] = -np.sin(theta) * h + np.cos(theta) * l
            Da = make_density(Ca, na)
            Db = make_density(Cb, nb)

        diis = DIIS(self.diis_size)
        nbf = self.basis.nbf
        energy = 0.0
        history: list[float] = []
        converged = False
        it = 0
        for it in range(1, self.max_iter + 1):
            Dt = Da + Db
            J = coulomb_from_tensor(eri, Dt)
            Ka = exchange_from_tensor(eri, Da)
            Kb = exchange_from_tensor(eri, Db)
            Fa = hcore + J - Ka
            Fb = hcore + J - Kb
            e_el = 0.5 * float(np.einsum("pq,pq->", Dt, hcore)
                               + np.einsum("pq,pq->", Da, Fa)
                               + np.einsum("pq,pq->", Db, Fb))
            energy = e_el + enuc
            history.append(energy)
            err_a = X.T @ (Fa @ Da @ S - S @ Da @ Fa) @ X
            err_b = X.T @ (Fb @ Db @ S - S @ Db @ Fb) @ X
            err = np.vstack([err_a, err_b])
            stacked = np.vstack([Fa, Fb])
            diis.push(stacked, err)
            may_exit = D0 is None or it > 1
            if may_exit and diis.error_norm() < self.conv_tol:
                converged = True
                break
            Fd = diis.extrapolate()
            Fa_d, Fb_d = Fd[:nbf], Fd[nbf:]

            def advance(F, D_old, nocc):
                f = X.T @ F @ X
                if self.level_shift > 0.0:
                    proj = X.T @ S @ D_old @ S @ X
                    f = f + self.level_shift * (np.eye(f.shape[0]) - proj)
                eps, Cp = np.linalg.eigh(f)
                C = X @ Cp
                return make_density(C, nocc), C, eps

            Da, Ca, eps_a = advance(Fa_d, Da, na)
            Db, Cb, eps_b = advance(Fb_d, Db, nb)
        # canonicalize against the final Fock matrices (the loop's
        # orbitals lag one iteration behind; see RHF.run)
        _, Ca, eps_a = self._final_orbitals(Fa, X)
        _, Cb, eps_b = self._final_orbitals(Fb, X)
        return UHFResult(
            energy=energy, energy_nuc=enuc, converged=converged, niter=it,
            C_a=Ca, C_b=Cb, eps_a=eps_a, eps_b=eps_b, D_a=Da, D_b=Db,
            S=S, basis=self.basis, nalpha=na, nbeta=nb, history=history,
        )

    @staticmethod
    def _final_orbitals(F, X):
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        return None, X @ Cp, eps


def run_uhf(mol: Molecule, basis: str = "sto-3g", **kw) -> UHFResult:
    """One-call UHF."""
    return UHF(mol, basis, **kw).run()
