"""Becke molecular integration grids (radial x Lebedev angular).

Used by the semilocal part of the PBE/PBE0 functionals.  The paper's
code evaluates the GGA pieces on the plane-wave grid; any quadrature
with sufficient precision preserves its behaviour, so we use the
standard Gauss-Chebyshev radial times small Lebedev angular product
grids with Becke fuzzy-cell partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..basis.basisset import BasisSet
from ..basis.shell import cartesian_components
from ..chem.elements import covalent_radius_bohr
from ..chem.molecule import Molecule

__all__ = ["lebedev_points", "radial_points", "MolecularGrid", "eval_aos"]


# --------------------------------------------------------------------------
# Lebedev angular quadrature (orders 6, 14, 26, 38, 50)
# --------------------------------------------------------------------------

def _oct_vertices() -> np.ndarray:
    """The 6 octahedron vertices (+-1, 0, 0) etc."""
    pts = []
    for d in range(3):
        for s in (1.0, -1.0):
            p = [0.0, 0.0, 0.0]
            p[d] = s
            pts.append(p)
    return np.array(pts)


def _oct_edges() -> np.ndarray:
    """The 12 edge midpoints (+-1/sqrt2, +-1/sqrt2, 0) etc."""
    a = 1.0 / np.sqrt(2.0)
    pts = []
    for (i, j) in ((0, 1), (0, 2), (1, 2)):
        for si in (1.0, -1.0):
            for sj in (1.0, -1.0):
                p = [0.0, 0.0, 0.0]
                p[i], p[j] = si * a, sj * a
                pts.append(p)
    return np.array(pts)


def _cube_vertices() -> np.ndarray:
    """The 8 cube vertices (+-1, +-1, +-1)/sqrt3."""
    a = 1.0 / np.sqrt(3.0)
    pts = []
    for sx in (1.0, -1.0):
        for sy in (1.0, -1.0):
            for sz in (1.0, -1.0):
                pts.append([sx * a, sy * a, sz * a])
    return np.array(pts)


def _pq0(p: float) -> np.ndarray:
    """24 points of class (p, q, 0) with q = sqrt(1 - p^2)."""
    q = np.sqrt(1.0 - p * p)
    pts = []
    for (u, v) in ((p, q), (q, p)):
        for (i, j) in ((0, 1), (0, 2), (1, 2)):
            for si in (1.0, -1.0):
                for sj in (1.0, -1.0):
                    x = [0.0, 0.0, 0.0]
                    x[i], x[j] = si * u, sj * v
                    pts.append(x)
    return np.array(pts)


def _llm(l: float) -> np.ndarray:
    """24 points of class (l, l, m) with m = sqrt(1 - 2 l^2)."""
    m = np.sqrt(1.0 - 2.0 * l * l)
    pts = []
    for pos in range(3):  # which coordinate carries m
        for sm in (1.0, -1.0):
            for s1 in (1.0, -1.0):
                for s2 in (1.0, -1.0):
                    vals = [s1 * l, s2 * l]
                    p = [0.0, 0.0, 0.0]
                    k = 0
                    for d in range(3):
                        if d == pos:
                            p[d] = sm * m
                        else:
                            p[d] = vals[k]
                            k += 1
                    pts.append(p)
    return np.array(pts)


_LEBEDEV = {
    6: [(_oct_vertices, (), 1.0 / 6.0)],
    14: [(_oct_vertices, (), 1.0 / 15.0), (_cube_vertices, (), 3.0 / 40.0)],
    26: [(_oct_vertices, (), 1.0 / 21.0), (_oct_edges, (), 4.0 / 105.0),
         (_cube_vertices, (), 9.0 / 280.0)],
    38: [(_oct_vertices, (), 1.0 / 105.0), (_cube_vertices, (), 9.0 / 280.0),
         (_pq0, (0.4597008433809831,), 1.0 / 35.0)],
    50: [(_oct_vertices, (), 0.0126984126984127),
         (_oct_edges, (), 0.02257495590828924),
         (_cube_vertices, (), 0.02109375),
         (_llm, (0.30151134457776357,), 0.02017333553791887)],
}


def lebedev_points(order: int) -> tuple[np.ndarray, np.ndarray]:
    """Unit-sphere quadrature of the requested size (6/14/26/38/50 points).

    Returns ``(points, weights)`` with weights summing to 1 (the 4*pi
    factor is folded into the radial weights by the caller).
    """
    try:
        classes = _LEBEDEV[order]
    except KeyError:
        raise ValueError(f"unsupported Lebedev order {order}; "
                         f"available: {sorted(_LEBEDEV)}") from None
    pts, wts = [], []
    for gen, args, w in classes:
        p = gen(*args)
        pts.append(p)
        wts.append(np.full(len(p), w))
    return np.vstack(pts), np.concatenate(wts)


def radial_points(n: int, rm: float) -> tuple[np.ndarray, np.ndarray]:
    """Becke radial quadrature: Gauss-Chebyshev (2nd kind) mapped by
    r = rm (1 + x) / (1 - x).

    Returns ``(r, w)`` where ``w`` already contains the r^2 Jacobian, so
    integral f = sum_i w_i f(r_i) approximates int_0^inf f(r) r^2 dr.
    """
    i = np.arange(1, n + 1)
    x = np.cos(i * np.pi / (n + 1.0))
    wcheb = np.pi / (n + 1.0) * np.sin(i * np.pi / (n + 1.0)) ** 2
    r = rm * (1.0 + x) / (1.0 - x)
    drdx = 2.0 * rm / (1.0 - x) ** 2
    # undo the Chebyshev weight function sqrt(1 - x^2)
    w = wcheb / np.sqrt(1.0 - x * x) * drdx * r * r
    return r, w


@dataclass
class MolecularGrid:
    """Becke-partitioned molecular quadrature grid.

    Attributes
    ----------
    points:
        Grid points, shape ``(npts, 3)`` Bohr.
    weights:
        Quadrature weights including the Becke partition of unity.
    """

    points: np.ndarray
    weights: np.ndarray

    @classmethod
    def build(cls, mol: Molecule, n_radial: int = 30, n_angular: int = 26,
              becke_iters: int = 3) -> "MolecularGrid":
        """Assemble atom-centered product grids with Becke weights."""
        ang_pts, ang_wts = lebedev_points(n_angular)
        all_pts, all_wts = [], []
        for ia in range(mol.natom):
            rm = max(0.5 * covalent_radius_bohr(int(mol.numbers[ia])), 0.4)
            rad, wrad = radial_points(n_radial, rm)
            pts = (rad[:, None, None] * ang_pts[None, :, :]).reshape(-1, 3)
            pts = pts + mol.coords[ia]
            wts = (wrad[:, None] * ang_wts[None, :]).reshape(-1) * 4.0 * np.pi
            becke = cls._becke_weights(mol, pts, ia, becke_iters)
            all_pts.append(pts)
            all_wts.append(wts * becke)
        return cls(np.vstack(all_pts), np.concatenate(all_wts))

    @staticmethod
    def _becke_weights(mol: Molecule, pts: np.ndarray, center: int,
                       iters: int) -> np.ndarray:
        """Becke fuzzy-cell partition weight of atom ``center`` at ``pts``."""
        if mol.natom == 1:
            return np.ones(len(pts))
        # distances of every point to every atom
        d = np.linalg.norm(pts[:, None, :] - mol.coords[None, :, :], axis=2)
        R = mol.distance_matrix()
        cell = np.ones((len(pts), mol.natom))
        for a in range(mol.natom):
            for b in range(mol.natom):
                if a == b:
                    continue
                mu = (d[:, a] - d[:, b]) / R[a, b]
                f = mu
                for _ in range(iters):
                    f = 1.5 * f - 0.5 * f ** 3
                cell[:, a] *= 0.5 * (1.0 - f)
        total = cell.sum(axis=1)
        total[total == 0.0] = 1.0
        return cell[:, center] / total

    @property
    def npts(self) -> int:
        """Number of grid points."""
        return len(self.weights)

    def integrate(self, values: np.ndarray) -> float:
        """Quadrature of a per-point integrand."""
        return float(self.weights @ values)


def eval_aos(basis: BasisSet, points: np.ndarray, deriv: int = 0):
    """Evaluate all AOs (and optionally gradients) on grid points.

    Returns ``ao`` of shape ``(npts, nbf)`` when ``deriv == 0``, else
    ``(ao, grad)`` with ``grad`` of shape ``(3, npts, nbf)``.
    """
    npts = len(points)
    ao = np.zeros((npts, basis.nbf))
    grad = np.zeros((3, npts, basis.nbf)) if deriv else None
    for ish, sh in enumerate(basis.shells):
        sl = basis.shell_slice(ish)
        r = points - sh.center[None, :]
        r2 = (r * r).sum(axis=1)
        # radial part per primitive: (npts, nprim)
        exps = np.exp(-np.outer(r2, sh.exps))
        comps = cartesian_components(sh.l)
        for ic, (lx, ly, lz) in enumerate(comps):
            poly = (r[:, 0] ** lx) * (r[:, 1] ** ly) * (r[:, 2] ** lz)
            rad = exps @ sh.norm_coefs[ic]           # (npts,)
            ao[:, sl.start + ic] = poly * rad
            if deriv:
                drad = -2.0 * (exps * sh.exps[None, :]) @ sh.norm_coefs[ic]
                for d, ld in enumerate((lx, ly, lz)):
                    dpoly = np.zeros(npts)
                    if ld > 0:
                        exps_l = [lx, ly, lz]
                        exps_l[d] = ld - 1
                        dpoly = (ld * (r[:, 0] ** exps_l[0])
                                 * (r[:, 1] ** exps_l[1])
                                 * (r[:, 2] ** exps_l[2]))
                    grad[d, :, sl.start + ic] = (dpoly * rad
                                                 + poly * r[:, d] * drad)
    if deriv:
        return ao, grad
    return ao
