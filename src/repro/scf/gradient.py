"""Analytic RHF nuclear gradients.

The closed-shell gradient of the SCF energy:

    dE/dX = sum_pq D_pq dh_pq/dX
          + sum_abcd [1/2 D_ab D_cd - 1/4 D_ac D_bd] d(ab|cd)/dX
          - sum_pq W_pq dS_pq/dX
          + dV_nn/dX

with the energy-weighted density W = 2 C_occ eps_occ C_occ^T.  All
derivative integrals come from :mod:`repro.integrals.gradients`
(Cartesian raise/lower; s/p shells).  Intended for the small systems
the quantum MD runs on — the quartet-derivative loop walks all ordered
shell quartets with Schwarz screening.
"""

from __future__ import annotations

import numpy as np

from ..basis.basisset import BasisSet
from ..chem.molecule import Molecule
from ..integrals.eri import ERIEngine
from ..integrals.gradients import (eri_gradient_quartet, kinetic_gradient,
                                   nuclear_gradient, overlap_gradient)
from .rhf import SCFResult

__all__ = ["rhf_gradient", "nuclear_repulsion_gradient",
           "AnalyticSCFForceEngine"]


def nuclear_repulsion_gradient(mol: Molecule) -> np.ndarray:
    """dV_nn/dX, shape ``(natom, 3)``."""
    g = np.zeros((mol.natom, 3))
    z = mol.numbers.astype(np.float64)
    for i in range(mol.natom):
        for j in range(mol.natom):
            if i == j:
                continue
            d = mol.coords[i] - mol.coords[j]
            r = np.linalg.norm(d)
            g[i] -= z[i] * z[j] * d / r ** 3
    return g


def _energy_weighted_density(res: SCFResult) -> np.ndarray:
    nocc = res.nocc
    C = res.C[:, :nocc]
    return 2.0 * (C * res.eps[:nocc][None, :]) @ C.T


def rhf_gradient(res: SCFResult, screen_eps: float = 1e-11) -> np.ndarray:
    """Analytic dE/dX of a converged RHF state, shape ``(natom, 3)``."""
    basis = res.basis
    mol = basis.molecule
    D = res.D
    W = _energy_weighted_density(res)
    natom = mol.natom
    grad = nuclear_repulsion_gradient(mol)
    charges = mol.numbers.astype(np.float64)
    centers = mol.coords
    shells = basis.shells

    # --- one-electron terms (loop over ordered shell pairs; each block's
    # bra derivative is computed directly and its ket derivative is
    # completed by translational invariance) ---------------------------------
    for i, sa in enumerate(shells):
        si = basis.shell_slice(i)
        for j, sb in enumerate(shells):
            sj = basis.shell_slice(j)
            Dblk = D[si, sj]
            Wblk = W[si, sj]
            # kinetic + overlap: dT/dB = -dT/dA (no operator center)
            dT = kinetic_gradient(sa, sb)
            dS = overlap_gradient(sa, sb)
            gA = np.einsum("dxy,xy->d", dT, Dblk) \
                - np.einsum("dxy,xy->d", dS, Wblk)
            grad[sa.atom] += gA
            grad[sb.atom] -= gA
            # nuclear attraction: bra + per-nucleus operator
            # (Hellmann-Feynman) terms; ket = -(bra + sum of operator)
            dVA, dVC = nuclear_gradient(sa, sb, charges, centers)
            gA_v = np.einsum("dxy,xy->d", dVA, Dblk)
            gC_v = np.einsum("kdxy,xy->kd", dVC, Dblk)
            grad[sa.atom] += gA_v
            grad += gC_v
            grad[sb.atom] -= gA_v + gC_v.sum(axis=0)

    # --- two-electron term ------------------------------------------------------
    engine = ERIEngine(basis)
    Q = engine.schwarz_bounds()
    dmax = float(np.abs(D).max())
    nsh = len(shells)
    slc = [basis.shell_slice(k) for k in range(nsh)]
    for i in range(nsh):
        for j in range(nsh):
            qij = Q[(i, j) if i <= j else (j, i)]
            for k in range(nsh):
                for l in range(nsh):
                    qkl = Q[(k, l) if k <= l else (l, k)]
                    if qij * qkl * dmax * dmax < screen_eps:
                        continue
                    dE = eri_gradient_quartet(shells[i], shells[j],
                                              shells[k], shells[l])
                    gam = (0.5 * np.einsum("xy,zw->xyzw",
                                           D[slc[i], slc[j]],
                                           D[slc[k], slc[l]])
                           - 0.25 * np.einsum("xz,yw->xyzw",
                                              D[slc[i], slc[k]],
                                              D[slc[j], slc[l]]))
                    gctr = np.einsum("cdxyzw,xyzw->cd", dE, gam)
                    atoms = (shells[i].atom, shells[j].atom,
                             shells[k].atom)
                    for c, at in enumerate(atoms):
                        grad[at] += gctr[c]
                    # fourth center from translational invariance
                    grad[shells[l].atom] -= gctr.sum(axis=0)
    return grad


class AnalyticSCFForceEngine:
    """Force engine on analytic RHF gradients (drop-in replacement for
    the finite-difference :class:`~repro.md.bomd.SCFForceEngine` on
    closed-shell s/p systems — one SCF per force call instead of 6N+1).
    """

    def __init__(self, mol: Molecule, basis: str = "sto-3g",
                 conv_tol: float = 1e-9, reuse_density: bool = True):
        self.mol = mol
        self.basis_name = basis
        self.conv_tol = conv_tol
        self.reuse_density = reuse_density
        self.last_result: SCFResult | None = None
        self.scf_iterations: list[int] = []

    def energy_forces(self, coords: np.ndarray) -> tuple[float, np.ndarray]:
        """SCF energy and analytic forces (-gradient)."""
        from .rhf import RHF

        mol = self.mol.with_coords(np.asarray(coords, dtype=np.float64))
        D0 = self.last_result.D if (self.reuse_density and
                                    self.last_result is not None) else None
        res = RHF(mol, self.basis_name, conv_tol=self.conv_tol).run(D0=D0)
        if not res.converged:
            raise RuntimeError("SCF failed to converge for forces")
        self.last_result = res
        self.scf_iterations.append(res.niter)
        return res.energy, -rhf_gradient(res)
