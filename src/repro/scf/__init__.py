"""Self-consistent field methods: RHF, Fock builds, DIIS, DFT (PBE/PBE0)."""

from .diis import DIIS
from .fock import (DirectJKBuilder, coulomb_from_tensor, exchange_from_tensor,
                   jk_from_tensor)
from .guess import (ASPCExtrapolator, aspc_coefficients, core_guess,
                    density_from_orbitals, orthogonalizer)
from .rhf import RHF, SCFResult, run_rhf
from .ri_jk import RIJKBuilder
from .soscf import ADIIS, EDIIS, NewtonSOSCF
from .uhf import UHF, UHFResult, run_uhf
from .mp2 import ao_to_mo, mp2_energy
from .gradient import (rhf_gradient, nuclear_repulsion_gradient,
                       AnalyticSCFForceEngine)

__all__ = [
    "DIIS",
    "DirectJKBuilder", "coulomb_from_tensor", "exchange_from_tensor",
    "jk_from_tensor",
    "ASPCExtrapolator", "aspc_coefficients",
    "core_guess", "density_from_orbitals", "orthogonalizer",
    "RHF", "SCFResult", "run_rhf",
    "RIJKBuilder",
    "ADIIS", "EDIIS", "NewtonSOSCF",
    "UHF", "UHFResult", "run_uhf",
    "ao_to_mo", "mp2_energy",
    "rhf_gradient", "nuclear_repulsion_gradient", "AnalyticSCFForceEngine",
]
