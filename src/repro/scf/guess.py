"""Initial-guess densities for SCF."""

from __future__ import annotations

import numpy as np
import scipy.linalg as sla

__all__ = ["core_guess", "density_from_orbitals", "orthogonalizer",
           "fermi_occupations", "density_from_occupations"]


def fermi_occupations(eps: np.ndarray, nelec: float,
                      sigma: float) -> np.ndarray:
    """Fractional occupations (0..2 per spatial orbital) from a
    Fermi-Dirac distribution at smearing width ``sigma`` (Hartree).

    The chemical potential is located by bisection so the occupations
    sum to ``nelec``.  Smearing is how condensed-phase SCF codes tame
    near-degenerate frontier orbitals (metallic/charge-transfer cases).
    """
    eps = np.asarray(eps, dtype=np.float64)
    if sigma <= 0.0:
        raise ValueError("sigma must be positive")
    if nelec < 0.0:
        raise ValueError(f"nelec must be non-negative, got {nelec}")
    if nelec > 2.0 * len(eps):
        # each spatial orbital holds at most 2 electrons, so the
        # bisection target is unreachable and the returned occupations
        # would silently sum to < nelec
        raise ValueError(
            f"fermi_occupations: cannot place {nelec} electrons in "
            f"{len(eps)} orbitals (capacity {2 * len(eps)}) — the "
            f"orbital spectrum is too small for the electron count")

    def occ(mu):
        x = np.clip((eps - mu) / sigma, -60.0, 60.0)
        return 2.0 / (1.0 + np.exp(x))

    lo, hi = eps.min() - 50.0 * sigma, eps.max() + 50.0 * sigma
    for _ in range(200):
        mu = 0.5 * (lo + hi)
        n = occ(mu).sum()
        if abs(n - nelec) < 1e-12:
            break
        if n < nelec:
            lo = mu
        else:
            hi = mu
    return occ(0.5 * (lo + hi))


def density_from_occupations(C: np.ndarray, occ: np.ndarray) -> np.ndarray:
    """AO density from orbitals with (possibly fractional) occupations."""
    return (C * occ[None, :]) @ C.T


def orthogonalizer(S: np.ndarray, lin_dep_tol: float = 1e-8) -> np.ndarray:
    """Symmetric (Loewdin) orthogonalizer X = S^-1/2.

    Eigenvectors of S with eigenvalues below ``lin_dep_tol`` are
    projected out (canonical orthogonalization), which keeps
    near-linearly-dependent condensed-phase bases stable.
    """
    w, U = np.linalg.eigh(S)
    keep = w > lin_dep_tol
    return U[:, keep] * (1.0 / np.sqrt(w[keep]))


def density_from_orbitals(C: np.ndarray, nocc: int) -> np.ndarray:
    """Closed-shell AO density D = 2 C_occ C_occ^T."""
    Cocc = C[:, :nocc]
    return 2.0 * Cocc @ Cocc.T


def core_guess(hcore: np.ndarray, S: np.ndarray, nocc: int
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Diagonalize the core Hamiltonian for the starting density.

    Returns ``(D, C, eps)``.
    """
    X = orthogonalizer(S)
    f = X.T @ hcore @ X
    eps, Cp = np.linalg.eigh(f)
    C = X @ Cp
    return density_from_orbitals(C, nocc), C, eps
