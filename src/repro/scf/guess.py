"""Initial-guess densities for SCF."""

from __future__ import annotations

from math import comb

import numpy as np
import scipy.linalg as sla

__all__ = ["core_guess", "density_from_orbitals", "orthogonalizer",
           "fermi_occupations", "density_from_occupations",
           "ASPCExtrapolator", "aspc_coefficients"]


def fermi_occupations(eps: np.ndarray, nelec: float,
                      sigma: float) -> np.ndarray:
    """Fractional occupations (0..2 per spatial orbital) from a
    Fermi-Dirac distribution at smearing width ``sigma`` (Hartree).

    The chemical potential is located by bisection so the occupations
    sum to ``nelec``.  Smearing is how condensed-phase SCF codes tame
    near-degenerate frontier orbitals (metallic/charge-transfer cases).
    """
    eps = np.asarray(eps, dtype=np.float64)
    if sigma <= 0.0:
        raise ValueError("sigma must be positive")
    if nelec < 0.0:
        raise ValueError(f"nelec must be non-negative, got {nelec}")
    if nelec > 2.0 * len(eps):
        # each spatial orbital holds at most 2 electrons, so the
        # bisection target is unreachable and the returned occupations
        # would silently sum to < nelec
        raise ValueError(
            f"fermi_occupations: cannot place {nelec} electrons in "
            f"{len(eps)} orbitals (capacity {2 * len(eps)}) — the "
            f"orbital spectrum is too small for the electron count")

    def occ(mu):
        x = np.clip((eps - mu) / sigma, -60.0, 60.0)
        return 2.0 / (1.0 + np.exp(x))

    lo, hi = eps.min() - 50.0 * sigma, eps.max() + 50.0 * sigma
    for _ in range(200):
        mu = 0.5 * (lo + hi)
        n = occ(mu).sum()
        if abs(n - nelec) < 1e-12:
            break
        if n < nelec:
            lo = mu
        else:
            hi = mu
    return occ(0.5 * (lo + hi))


def density_from_occupations(C: np.ndarray, occ: np.ndarray) -> np.ndarray:
    """AO density from orbitals with (possibly fractional) occupations."""
    return (C * occ[None, :]) @ C.T


def orthogonalizer(S: np.ndarray, lin_dep_tol: float = 1e-8) -> np.ndarray:
    """Symmetric (Loewdin) orthogonalizer X = S^-1/2.

    Eigenvectors of S with eigenvalues below ``lin_dep_tol`` are
    projected out (canonical orthogonalization), which keeps
    near-linearly-dependent condensed-phase bases stable.
    """
    w, U = np.linalg.eigh(S)
    keep = w > lin_dep_tol
    return U[:, keep] * (1.0 / np.sqrt(w[keep]))


def density_from_orbitals(C: np.ndarray, nocc: int) -> np.ndarray:
    """Closed-shell AO density D = 2 C_occ C_occ^T."""
    Cocc = C[:, :nocc]
    return 2.0 * Cocc @ Cocc.T


def core_guess(hcore: np.ndarray, S: np.ndarray, nocc: int
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Diagonalize the core Hamiltonian for the starting density.

    Returns ``(D, C, eps)``.
    """
    X = orthogonalizer(S)
    f = X.T @ hcore @ X
    eps, Cp = np.linalg.eigh(f)
    C = X @ Cp
    return density_from_orbitals(C, nocc), C, eps


def aspc_coefficients(order: int) -> tuple[np.ndarray, float]:
    """Kolafa ASPC predictor coefficients ``B_j`` and corrector mixing
    ``omega`` for extrapolation order ``k = order``.

    The predictor uses the ``k + 2`` most recent history densities:

        D_pred(t+1) = sum_{j=1..k+2} B_j * D(t+1-j)
        B_j = (-1)^(j+1) * j * C(2k+4, k+2-j) / C(2k+2, k+1)
        omega = (k+2) / (2k+3)

    (J. Kolafa, J. Comput. Chem. 25, 335 (2004)); ``omega`` damps the
    corrected density pushed back into the history so the coupled
    predictor/SCF iteration stays contractive (time-reversible up to
    O(dt^{2k+2})).  ``order=0`` gives the familiar linear extrapolation
    (2, -1) with omega = 2/3.
    """
    if not isinstance(order, int) or isinstance(order, bool) or order < 0:
        raise ValueError(f"ASPC order must be a non-negative int, got {order!r}")
    k = order
    denom = comb(2 * k + 2, k + 1)
    B = np.array([(-1.0) ** (j + 1) * j * comb(2 * k + 4, k + 2 - j) / denom
                  for j in range(1, k + 3)])
    return B, (k + 2.0) / (2.0 * k + 3.0)


class ASPCExtrapolator:
    """Always-stable predictor-corrector history over SCF densities.

    Feeds MD warm starts: ``predict()`` extrapolates the next converged
    density from the history, the SCF corrects it, and ``push()`` blends
    the corrected density back in with the stability weight ``omega``.
    While the history is still filling the order is reduced gracefully
    (one entry -> plain previous-density reuse, two -> linear, ...).

    The history is plain ndarray state: ``get_state``/``set_state``
    round-trip it bit-exactly through the checkpoint store so a killed
    MTS trajectory resumes with identical predictions.
    """

    def __init__(self, order: int = 2):
        # validate eagerly so a bad order fails at construction
        aspc_coefficients(order)
        self.order = int(order)
        self.history: list[np.ndarray] = []   # most recent first

    def __len__(self) -> int:
        return len(self.history)

    def _effective_order(self) -> int:
        # with m stored densities the largest usable order is m - 2
        return min(self.order, len(self.history) - 2)

    def predict(self) -> np.ndarray | None:
        """Extrapolated density for the next step, or None if empty."""
        m = len(self.history)
        if m == 0:
            return None
        if m == 1:
            return self.history[0].copy()
        B, _ = aspc_coefficients(self._effective_order())
        D = B[0] * self.history[0]
        for bj, Dj in zip(B[1:], self.history[1:]):
            D += bj * Dj
        return D

    def push(self, corrected: np.ndarray,
             predicted: np.ndarray | None = None) -> None:
        """Insert the SCF-corrected density for the step just taken.

        ``predicted`` must be the value ``predict()`` returned before the
        SCF ran (None on the cold first step): the stored entry is
        ``omega * corrected + (1 - omega) * predicted``.
        """
        corrected = np.asarray(corrected, dtype=np.float64)
        if predicted is None or len(self.history) == 0:
            entry = corrected.copy()
        elif len(self.history) == 1:
            # effective order -1: omega = 1, i.e. keep the corrector
            entry = corrected.copy()
        else:
            _, omega = aspc_coefficients(self._effective_order())
            entry = omega * corrected + (1.0 - omega) * predicted
        self.history.insert(0, entry)
        del self.history[self.order + 2:]

    # -- Restartable ---------------------------------------------------
    def get_state(self) -> dict:
        return {"kind": "aspc", "order": self.order,
                "history": [h.copy() for h in self.history]}

    def set_state(self, state: dict) -> None:
        if state.get("kind") != "aspc":
            raise ValueError(f"not an ASPC snapshot: {state.get('kind')!r}")
        if int(state["order"]) != self.order:
            raise ValueError(
                f"ASPC order mismatch: snapshot has order {state['order']}, "
                f"this extrapolator was built with order {self.order}")
        self.history = [np.asarray(h, dtype=np.float64).copy()
                        for h in state["history"]]
