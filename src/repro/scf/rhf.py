"""Restricted Hartree-Fock with DIIS.

The RHF driver is both a validation target (literature STO-3G energies)
and the host of the HFX build the paper parallelizes: every SCF
iteration calls a J/K builder, and :mod:`repro.hfx` swaps in the
distributed one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..basis.basisset import BasisSet, build_basis
from ..chem.molecule import Molecule, nuclear_repulsion
from ..integrals import (eri_tensor, kinetic_matrix, nuclear_matrix,
                         overlap_matrix)
from .diis import DIIS
from .fock import DirectJKBuilder, jk_from_tensor
from .guess import core_guess, density_from_orbitals, orthogonalizer

__all__ = ["SCFResult", "RHF", "run_rhf"]


@dataclass
class SCFResult:
    """Converged (or best-effort) SCF state."""

    energy: float
    energy_nuc: float
    energy_electronic: float
    converged: bool
    niter: int
    C: np.ndarray
    eps: np.ndarray
    D: np.ndarray
    F: np.ndarray
    S: np.ndarray
    hcore: np.ndarray
    basis: BasisSet
    exchange_energy: float = 0.0
    history: list[float] = field(default_factory=list)
    solver: str = "diis"
    fock_builds: int = 0
    micro_iters: int = 0
    soscf_state: dict | None = None
    wall_s: float = 0.0

    @property
    def nocc(self) -> int:
        """Number of doubly occupied orbitals."""
        return self.basis.molecule.nelectron // 2

    def homo_lumo_gap(self) -> float:
        """HOMO-LUMO gap in Hartree.

        ``inf`` when the frontier pair does not exist: no occupied
        orbitals (``nocc == 0`` — there is no HOMO to wrap to) or no
        virtuals.  Canonical orthogonalization can project
        near-linearly-dependent combinations out of the spectrum, so
        ``eps`` may be shorter than ``nbf``; a density that needs more
        orbitals than the projected spectrum holds is an error, not a
        silent out-of-range read.
        """
        n = self.nocc
        nmo = len(self.eps)
        if n > nmo:
            raise ValueError(
                f"homo_lumo_gap: {n} occupied orbitals but only {nmo} "
                f"orbital energies — the orthogonalizer's linear-"
                f"dependence projection left too few orbitals for the "
                f"electron count")
        if n == 0 or n == nmo:
            return np.inf
        return float(self.eps[n] - self.eps[n - 1])

    def mulliken_charges(self) -> np.ndarray:
        """Mulliken atomic partial charges."""
        pop = np.einsum("pq,qp->p", self.D, self.S)
        charges = self.basis.molecule.numbers.astype(float).copy()
        for ish, sh in enumerate(self.basis.shells):
            sl = self.basis.shell_slice(ish)
            charges[sh.atom] -= pop[sl].sum()
        return charges

    def summary(self) -> dict:
        """Compact scalar surface (tables, CLI JSON) — no matrices.

        A schema-versioned record (see :mod:`repro.runtime.schema`):
        the envelope keys (``schema_version``/``kind``/``wall_s``/
        ``counters``) plus the SCF payload.
        """
        from ..runtime.schema import result_envelope

        return result_envelope(
            "scf", wall_s=self.wall_s,
            counters={
                "scf.fock_builds": int(self.fock_builds),
                "scf.micro_iters": int(self.micro_iters),
                "scf.niter": int(self.niter),
            },
            energy=float(self.energy),
            energy_nuc=float(self.energy_nuc),
            energy_electronic=float(self.energy_electronic),
            exchange_energy=float(self.exchange_energy),
            homo_lumo_gap=float(self.homo_lumo_gap()),
            converged=bool(self.converged),
            niter=int(self.niter),
            nbf=int(self.basis.nbf),
            nocc=int(self.nocc),
            solver=str(self.solver),
            fock_builds=int(self.fock_builds),
            micro_iters=int(self.micro_iters),
        )

    def to_dict(self) -> dict:
        """Full JSON-serializable dump (adds per-iteration history and
        orbital energies; matrices stay on the dataclass)."""
        d = self.summary()
        d["history"] = [float(e) for e in self.history]
        d["orbital_energies"] = [float(e) for e in self.eps]
        d["mulliken_charges"] = [float(q) for q in self.mulliken_charges()]
        return d


class RHF:
    """Restricted Hartree-Fock driver.

    Parameters
    ----------
    mol:
        Closed-shell molecule (even electron count).
    basis:
        Basis-set name (see :func:`repro.basis.available_basis_sets`)
        or a prebuilt :class:`BasisSet`.
    mode:
        ``"incore"`` materializes the ERI tensor (small systems);
        ``"direct"`` uses screened shell-quartet builds — the execution
        style of the paper.
    screen_eps:
        Cauchy-Schwarz threshold for direct mode (the paper's
        controllable-accuracy knob).
    config:
        :class:`repro.runtime.ExecutionConfig` selecting where the
        direct J/K builds run (``executor="process"`` requires
        ``mode="direct"``; the pool outlives single builds — it is
        spawned once and reused by every SCF iteration) and carrying
        the telemetry sinks.
    jk_pool:
        Externally owned :class:`repro.runtime.pool.ExchangeWorkerPool`
        to reuse (e.g. across the SCFs of an MD trajectory); when given,
        this driver does not close it.
    k_builder:
        Externally owned exchange builder with an
        ``update(D) -> K`` surface (e.g.
        :class:`repro.hfx.IncrementalExchange`): when given, direct
        builds take K from it — the density-difference screen then
        spans the SCF iterations — while J still comes from the direct
        builder.  Requires ``mode="direct"``; the caller owns the
        builder's history (``reset()`` at geometry jumps) and lifetime.
    soscf_rough:
        Rough-phase interpolation for ``scf_solver="soscf"``:
        ``"adiis"`` (default) or ``"ediis"`` — see
        :mod:`repro.scf.soscf`.  Ignored by the other solvers
        (``"auto"`` roughs with plain DIIS so its pre-handoff iterates
        match the reference loop).
    soscf_state:
        Warm-start state for the Newton solver (a dict previously
        returned on :attr:`SCFResult.soscf_state`): restores the
        adaptive trust radius and cumulative counters so SOSCF warm
        starts survive checkpoint/restore across an MD trajectory.
    """

    def __init__(self, mol: Molecule, basis: str | BasisSet = "sto-3g",
                 mode: str = "incore", screen_eps: float = 1e-10,
                 conv_tol: float = 1e-8, max_iter: int = 100,
                 diis_size: int = 8, level_shift: float = 0.0,
                 damping: float = 0.0, smearing: float = 0.0,
                 jk_pool=None, k_builder=None, ri_builder=None, config=None,
                 soscf_rough: str = "adiis",
                 soscf_state: dict | None = None):
        from ..runtime.execconfig import resolve_execution

        if mol.nelectron % 2 != 0:
            raise ValueError("RHF requires an even electron count; "
                             f"{mol.name or 'molecule'} has {mol.nelectron}")
        if mode not in ("incore", "direct"):
            raise ValueError(f"mode must be 'incore' or 'direct', got {mode!r}")
        self.config = resolve_execution(config, owner=type(self).__name__)
        if self.config.executor == "process" and mode != "direct":
            raise ValueError("executor='process' requires mode='direct' "
                             "(the in-core tensor path has no quartet loop "
                             "to distribute)")
        self.mol = mol
        self.basis = basis if isinstance(basis, BasisSet) else build_basis(mol, basis)
        self.mode = mode
        self.screen_eps = screen_eps
        self.conv_tol = conv_tol
        self.max_iter = max_iter
        self.diis_size = diis_size
        self.level_shift = level_shift
        self.damping = damping
        self.smearing = smearing
        self.executor = self.config.executor
        self.nworkers = self.config.nworkers
        self.scf_solver = self.config.scf_solver
        self.soscf_rough = soscf_rough
        self.soscf_state = soscf_state
        if soscf_rough not in ("adiis", "ediis"):
            raise ValueError(f"soscf_rough must be 'adiis' or 'ediis', "
                             f"got {soscf_rough!r}")
        if self.scf_solver != "diis" and smearing > 0.0:
            raise ValueError(
                "fractional (smeared) occupations break the "
                "occupied-virtual rotation parametrization of the "
                "Newton solver; use scf_solver='diis' with smearing")
        self.jk_pool = jk_pool
        self.k_builder = k_builder
        self.ri_builder = ri_builder
        if k_builder is not None and mode != "direct":
            raise ValueError("k_builder requires mode='direct' (the "
                             "in-core tensor path builds J and K together)")
        if self.config.jk == "ri":
            if mode != "direct":
                raise ValueError("jk='ri' requires mode='direct' (the "
                                 "in-core path materializes the exact "
                                 "4-index tensor — fitting it buys nothing)")
            if k_builder is not None:
                raise ValueError("jk='ri' is incompatible with an "
                                 "incremental k_builder: the fitted K is "
                                 "rebuilt from the cached B tensor instead")
        elif ri_builder is not None:
            raise ValueError("ri_builder requires jk='ri'")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        if smearing < 0.0:
            raise ValueError("smearing must be non-negative")
        self._eri = None
        self._direct: DirectJKBuilder | None = None
        self._owns_jk = True

    def _next_density(self, Fd, X, S, D_old, nocc):
        """Diagonalize the (possibly level-shifted) Fock matrix and form
        the next (possibly damped) density.

        Level shifting raises the virtual orbitals by ``level_shift``
        Hartree (projector built from the current density), damping
        mixes ``damping`` of the old density into the new one — both
        standard stabilizers for hard (e.g. anionic-complex) SCFs.
        """
        f = X.T @ Fd @ X
        if self.level_shift > 0.0:
            # occupied projector in the orthonormal basis
            half = X.T @ S @ (0.5 * D_old) @ S @ X
            f = f + self.level_shift * (np.eye(f.shape[0]) - half)
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        if self.smearing > 0.0:
            from .guess import density_from_occupations, fermi_occupations

            occ = fermi_occupations(eps, 2.0 * nocc, self.smearing)
            D = density_from_occupations(C, occ)
        else:
            D = density_from_orbitals(C, nocc)
        if self.damping > 0.0:
            D = (1.0 - self.damping) * D + self.damping * D_old
        return D, C, eps

    # --- integral plumbing ---------------------------------------------------

    def _setup(self):
        with self.config.trace.span("scf.setup", cat="scf",
                                    mode=self.mode, nbf=self.basis.nbf):
            S = overlap_matrix(self.basis)
            T = kinetic_matrix(self.basis)
            V = nuclear_matrix(self.basis)
            hcore = T + V
            if self.mode == "incore":
                self._eri = eri_tensor(self.basis)
            elif self.config.jk == "ri":
                from .ri_jk import RIJKBuilder

                if self.ri_builder is not None:
                    # a persistent builder (the MD path) carries its B
                    # cache across runs; re-target it if the caller has
                    # not already done so
                    if self.ri_builder.basis is not self.basis:
                        self.ri_builder.reset(self.basis)
                    self._direct = self.ri_builder
                    self._owns_jk = False
                else:
                    self._direct = RIJKBuilder(
                        self.basis, eps=self.screen_eps, config=self.config,
                        pool=self.jk_pool)
            else:
                self._direct = DirectJKBuilder(
                    self.basis, eps=self.screen_eps, config=self.config,
                    pool=self.jk_pool)
        return S, hcore

    def build_jk(self, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """J and K for the current density (mode-dispatched)."""
        if self.mode == "incore":
            return jk_from_tensor(self._eri, D)
        if self.k_builder is not None:
            J, _ = self._direct.build(D, want_k=False)
            return J, self.k_builder.update(D)
        return self._direct.build(D)

    # --- SCF loop -------------------------------------------------------------

    def run(self, D0: np.ndarray | None = None) -> SCFResult:
        """Iterate to self-consistency and return the result.

        ``scf_solver="diis"`` (the default) runs the bit-exact DIIS
        reference loop below; ``"soscf"``/``"auto"`` dispatch to the
        accelerated Newton path (:meth:`_run_soscf`), which agrees with
        the reference energies to the convergence tolerance while
        spending fewer Fock builds.
        """
        if self.scf_solver != "diis":
            return self._run_soscf(D0)
        t0 = time.perf_counter()
        S, hcore = self._setup()
        nocc = self.mol.nelectron // 2
        if nocc == 0:
            raise ValueError("no electrons to correlate — check charge")
        if D0 is None:
            D, C, eps = core_guess(hcore, S, nocc)
        else:
            D, C, eps = D0.copy(), None, None
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        diis = DIIS(self.diis_size)
        energy = 0.0
        ex_energy = 0.0
        history: list[float] = []
        converged = False
        it = 0
        tr = self.config.trace
        try:
            for it in range(1, self.max_iter + 1):
                with tr.span("scf.iteration", cat="scf", it=it):
                    J, K = self.build_jk(D)
                    tr.count("scf.fock_builds", 1)
                    F = hcore + J - 0.5 * K
                    e_el = 0.5 * float(np.einsum("pq,pq->", D, hcore + F))
                    energy = e_el + enuc
                    history.append(energy)
                    ex_energy = -0.25 * float(np.einsum("pq,pq->", K, D))
                    with tr.span("scf.diis", cat="diis"):
                        err = X.T @ (F @ D @ S - S @ D @ F) @ X
                        diis.push(F, err)
                        err_norm = diis.error_norm()
                    # a supplied D0 can have a vanishing commutator while
                    # being mis-normalized for this geometry; require at
                    # least one orbital update before trusting the
                    # convergence test
                    may_exit = D0 is None or it > 1
                    if may_exit and err_norm < self.conv_tol:
                        converged = True
                        break
                    with tr.span("scf.update", cat="scf"):
                        Fd = diis.extrapolate()
                        D, C, eps = self._next_density(Fd, X, S, D, nocc)
        finally:
            # a pool this run spawned dies with the run; an external
            # jk_pool (or a persistent ri_builder with its B cache) is
            # left running for the caller to reuse
            if self._direct is not None and self._owns_jk:
                self._direct.close()
        if tr.enabled:
            tr.metrics.set("scf.niter", it)
            tr.metrics.set("scf.converged", int(converged))
            tr.metrics.set("scf.diis_fallbacks", diis.fallbacks)
        # canonicalize against the final Fock matrix: the loop's C/eps
        # lag one iteration behind (and are the bare core-guess values
        # when convergence hits on iteration 1)
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        return SCFResult(
            energy=energy, energy_nuc=enuc, energy_electronic=energy - enuc,
            converged=converged, niter=it, C=C, eps=eps, D=D,
            F=hcore if it == 0 else F, S=S, hcore=hcore, basis=self.basis,
            exchange_energy=ex_energy, history=history,
            solver="diis", fock_builds=it,
            wall_s=time.perf_counter() - t0,
        )


    # --- accelerated (SOSCF) path --------------------------------------------

    def _prepare_xc(self) -> None:
        """Hook: build grid/XC machinery before Fock evaluation.

        Hartree-Fock has no semilocal term; :class:`repro.scf.dft.RKS`
        overrides this to build its Becke grid integrator.
        """

    def _soscf_fock_energy(self, hcore: np.ndarray, enuc: float):
        """``fock_energy(D) -> (F, E_total, E_x)`` closure for SOSCF.

        Same operations as one reference-loop iteration, so the Newton
        path optimizes exactly the energy the DIIS path reports.
        """
        def fock_energy(D):
            J, K = self.build_jk(D)
            F = hcore + J - 0.5 * K
            e_el = 0.5 * float(np.einsum("pq,pq->", D, hcore + F))
            ex = -0.25 * float(np.einsum("pq,pq->", K, D))
            return F, e_el + enuc, ex
        return fock_energy

    def _soscf_response(self):
        """``response(d, D) -> J(d) - 0.5 K(d)`` closure for the Newton
        micro-iterations (``D``, the base density, is unused for pure
        Hartree-Fock — the Kohn-Sham override differentiates its grid
        potential around it).

        Perturbation densities never route through an external
        ``k_builder`` — an :class:`~repro.hfx.IncrementalExchange`
        history is anchored to the SCF density trajectory and a
        response density would poison it — so direct mode always uses
        the in-house builder (pool/batched kernel included).
        """
        def response(d, D=None):
            if self.mode == "incore":
                J, K = jk_from_tensor(self._eri, d)
            else:
                J, K = self._direct.build(d)
            return J - 0.5 * K
        return response

    def _run_soscf(self, D0: np.ndarray | None = None) -> SCFResult:
        """The accelerated convergence stack (``scf_solver != "diis"``).

        Phase 1 (*rough*): ``"auto"`` runs plain DIIS iterations —
        identical stabilizers (level shift, damping) to the reference
        loop — until the commutator norm crosses the handoff threshold
        or visibly stalls; ``"soscf"`` instead interpolates with
        ADIIS/EDIIS, which tolerates far-from-converged starts.
        Phase 2: trust-radius Newton micro-iterations
        (:class:`repro.scf.soscf.NewtonSOSCF`) to the final tolerance.
        """
        from .soscf import ADIIS, DEFAULT_HANDOFF, EDIIS, NewtonSOSCF

        t0 = time.perf_counter()
        S, hcore = self._setup()
        self._prepare_xc()
        nocc = self.mol.nelectron // 2
        if nocc == 0:
            raise ValueError("no electrons to correlate — check charge")
        if D0 is None:
            D, C, _ = core_guess(hcore, S, nocc)
        else:
            D, C = D0.copy(), None
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        fock_energy = self._soscf_fock_energy(hcore, enuc)
        tr = self.config.trace
        auto = self.scf_solver == "auto"
        diis = DIIS(self.diis_size)
        rough = None if auto else \
            (EDIIS if self.soscf_rough == "ediis" else ADIIS)(self.diis_size)
        solver = NewtonSOSCF(fock_energy, self._soscf_response(), S, X,
                             nocc, conv_tol=self.conv_tol, trace=tr)
        if self.soscf_state is not None:
            solver.set_state(self.soscf_state)
        builds0, micro0 = solver.fock_builds, solver.micro_iters
        energy = 0.0
        ex_energy = 0.0
        history: list[float] = []
        err_hist: list[float] = []
        converged = False
        nrough = 0
        rough_builds = 0
        try:
            # --- phase 1: rough convergence ------------------------------
            max_rough = min(self.max_iter, 12)
            F = None
            fresh = False       # F/energy match the current D and C?
            while nrough < max_rough:
                nrough += 1
                with tr.span("scf.iteration", cat="scf", it=nrough,
                             phase="rough"):
                    F, energy, ex_energy = fock_energy(D)
                    fresh = True
                    rough_builds += 1
                    tr.count("scf.fock_builds", 1)
                    history.append(energy)
                    err = X.T @ (F @ D @ S - S @ D @ F) @ X
                    err_norm = float(np.abs(err).max())
                    err_hist.append(err_norm)
                    # see run(): a supplied D0 can have a vanishing
                    # commutator while being wrong for this geometry
                    may_exit = D0 is None or nrough > 1
                    if may_exit and err_norm < self.conv_tol:
                        converged = True
                        break
                    if may_exit and err_norm < DEFAULT_HANDOFF:
                        break                      # hand off to Newton
                    if auto and rough is None and len(err_hist) >= 6 \
                            and err_hist[-1] > 0.5 * err_hist[-4]:
                        # DIIS is stalling.  Close to convergence the
                        # Newton solver takes it from here; far out a
                        # premature handoff can drop Newton into the
                        # basin of a saddle (metastable SCF solution),
                        # so the rough phase switches to ADIIS instead
                        if err_norm < 10.0 * DEFAULT_HANDOFF:
                            break
                        rough = ADIIS(self.diis_size)
                    with tr.span("scf.update", cat="scf"):
                        if rough is None:
                            diis.push(F, err)
                            Fd = diis.extrapolate()
                        else:
                            rough.push(D, F, energy)
                            Fd = rough.fock() if rough.nvec >= 2 else F
                        D, C, _ = self._next_density(Fd, X, S, D, nocc)
                        fresh = False
            # --- phase 2: Newton macro/micro iterations ------------------
            niter = nrough
            if not converged:
                # the rough phase's (F, E) pair is reusable when it
                # still matches the orbitals: no update ran after the
                # build, and no damping mixed D away from 2 C_o C_o^T
                state = (F, energy, ex_energy) \
                    if (fresh and C is not None and self.damping == 0.0) \
                    else None
                if C is None:
                    # a supplied D0 carries no orbitals: canonicalize
                    f = X.T @ F @ X
                    _, Cp = np.linalg.eigh(f)
                    C = X @ Cp
                out = solver.solve(
                    C, max_macro=max(self.max_iter - nrough, 1),
                    history=history, state=state)
                converged = out["converged"]
                D, F = out["D"], out["F"]
                energy, ex_energy = out["energy"], out["exchange_energy"]
                niter = nrough + out["niter"]
        finally:
            # mirror run(): a pool this run spawned dies with the run
            if self._direct is not None and self._owns_jk:
                self._direct.close()
        if tr.enabled:
            tr.metrics.set("scf.niter", niter)
            tr.metrics.set("scf.converged", int(converged))
            tr.metrics.set("scf.diis_fallbacks", diis.fallbacks)
        # canonicalize against the final Fock matrix (see run())
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        return SCFResult(
            energy=energy, energy_nuc=enuc, energy_electronic=energy - enuc,
            converged=converged, niter=niter, C=C, eps=eps, D=D, F=F, S=S,
            hcore=hcore, basis=self.basis, exchange_energy=ex_energy,
            history=history, solver=self.scf_solver,
            fock_builds=rough_builds + solver.fock_builds - builds0,
            micro_iters=solver.micro_iters - micro0,
            soscf_state=solver.get_state(),
            wall_s=time.perf_counter() - t0,
        )


def run_rhf(mol: Molecule, basis: str = "sto-3g", **kw) -> SCFResult:
    """One-call RHF: build basis, iterate, return the result."""
    return RHF(mol, basis, **kw).run()
