"""Restricted Hartree-Fock with DIIS.

The RHF driver is both a validation target (literature STO-3G energies)
and the host of the HFX build the paper parallelizes: every SCF
iteration calls a J/K builder, and :mod:`repro.hfx` swaps in the
distributed one.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..basis.basisset import BasisSet, build_basis
from ..chem.molecule import Molecule, nuclear_repulsion
from ..integrals import (eri_tensor, kinetic_matrix, nuclear_matrix,
                         overlap_matrix)
from .diis import DIIS
from .fock import DirectJKBuilder, jk_from_tensor
from .guess import core_guess, density_from_orbitals, orthogonalizer

__all__ = ["SCFResult", "RHF", "run_rhf"]


@dataclass
class SCFResult:
    """Converged (or best-effort) SCF state."""

    energy: float
    energy_nuc: float
    energy_electronic: float
    converged: bool
    niter: int
    C: np.ndarray
    eps: np.ndarray
    D: np.ndarray
    F: np.ndarray
    S: np.ndarray
    hcore: np.ndarray
    basis: BasisSet
    exchange_energy: float = 0.0
    history: list[float] = field(default_factory=list)

    @property
    def nocc(self) -> int:
        """Number of doubly occupied orbitals."""
        return self.basis.molecule.nelectron // 2

    def homo_lumo_gap(self) -> float:
        """HOMO-LUMO gap in Hartree (inf when no virtuals exist)."""
        n = self.nocc
        if n >= len(self.eps):
            return np.inf
        return float(self.eps[n] - self.eps[n - 1])

    def mulliken_charges(self) -> np.ndarray:
        """Mulliken atomic partial charges."""
        pop = np.einsum("pq,qp->p", self.D, self.S)
        charges = self.basis.molecule.numbers.astype(float).copy()
        for ish, sh in enumerate(self.basis.shells):
            sl = self.basis.shell_slice(ish)
            charges[sh.atom] -= pop[sl].sum()
        return charges

    def summary(self) -> dict:
        """Compact scalar surface (tables, CLI JSON) — no matrices."""
        return {
            "energy": float(self.energy),
            "energy_nuc": float(self.energy_nuc),
            "energy_electronic": float(self.energy_electronic),
            "exchange_energy": float(self.exchange_energy),
            "homo_lumo_gap": float(self.homo_lumo_gap()),
            "converged": bool(self.converged),
            "niter": int(self.niter),
            "nbf": int(self.basis.nbf),
            "nocc": int(self.nocc),
        }

    def to_dict(self) -> dict:
        """Full JSON-serializable dump (adds per-iteration history and
        orbital energies; matrices stay on the dataclass)."""
        d = self.summary()
        d["history"] = [float(e) for e in self.history]
        d["orbital_energies"] = [float(e) for e in self.eps]
        d["mulliken_charges"] = [float(q) for q in self.mulliken_charges()]
        return d


class RHF:
    """Restricted Hartree-Fock driver.

    Parameters
    ----------
    mol:
        Closed-shell molecule (even electron count).
    basis:
        Basis-set name (see :func:`repro.basis.available_basis_sets`)
        or a prebuilt :class:`BasisSet`.
    mode:
        ``"incore"`` materializes the ERI tensor (small systems);
        ``"direct"`` uses screened shell-quartet builds — the execution
        style of the paper.
    screen_eps:
        Cauchy-Schwarz threshold for direct mode (the paper's
        controllable-accuracy knob).
    config:
        :class:`repro.runtime.ExecutionConfig` selecting where the
        direct J/K builds run (``executor="process"`` requires
        ``mode="direct"``; the pool outlives single builds — it is
        spawned once and reused by every SCF iteration) and carrying
        the telemetry sinks.
    jk_pool:
        Externally owned :class:`repro.runtime.pool.ExchangeWorkerPool`
        to reuse (e.g. across the SCFs of an MD trajectory); when given,
        this driver does not close it.
    k_builder:
        Externally owned exchange builder with an
        ``update(D) -> K`` surface (e.g.
        :class:`repro.hfx.IncrementalExchange`): when given, direct
        builds take K from it — the density-difference screen then
        spans the SCF iterations — while J still comes from the direct
        builder.  Requires ``mode="direct"``; the caller owns the
        builder's history (``reset()`` at geometry jumps) and lifetime.
    """

    def __init__(self, mol: Molecule, basis: str | BasisSet = "sto-3g",
                 mode: str = "incore", screen_eps: float = 1e-10,
                 conv_tol: float = 1e-8, max_iter: int = 100,
                 diis_size: int = 8, level_shift: float = 0.0,
                 damping: float = 0.0, smearing: float = 0.0,
                 jk_pool=None, k_builder=None, config=None):
        from ..runtime.execconfig import resolve_execution

        if mol.nelectron % 2 != 0:
            raise ValueError("RHF requires an even electron count; "
                             f"{mol.name or 'molecule'} has {mol.nelectron}")
        if mode not in ("incore", "direct"):
            raise ValueError(f"mode must be 'incore' or 'direct', got {mode!r}")
        self.config = resolve_execution(config, owner=type(self).__name__)
        if self.config.executor == "process" and mode != "direct":
            raise ValueError("executor='process' requires mode='direct' "
                             "(the in-core tensor path has no quartet loop "
                             "to distribute)")
        self.mol = mol
        self.basis = basis if isinstance(basis, BasisSet) else build_basis(mol, basis)
        self.mode = mode
        self.screen_eps = screen_eps
        self.conv_tol = conv_tol
        self.max_iter = max_iter
        self.diis_size = diis_size
        self.level_shift = level_shift
        self.damping = damping
        self.smearing = smearing
        self.executor = self.config.executor
        self.nworkers = self.config.nworkers
        self.jk_pool = jk_pool
        self.k_builder = k_builder
        if k_builder is not None and mode != "direct":
            raise ValueError("k_builder requires mode='direct' (the "
                             "in-core tensor path builds J and K together)")
        if not 0.0 <= damping < 1.0:
            raise ValueError("damping must be in [0, 1)")
        if smearing < 0.0:
            raise ValueError("smearing must be non-negative")
        self._eri = None
        self._direct: DirectJKBuilder | None = None

    def _next_density(self, Fd, X, S, D_old, nocc):
        """Diagonalize the (possibly level-shifted) Fock matrix and form
        the next (possibly damped) density.

        Level shifting raises the virtual orbitals by ``level_shift``
        Hartree (projector built from the current density), damping
        mixes ``damping`` of the old density into the new one — both
        standard stabilizers for hard (e.g. anionic-complex) SCFs.
        """
        f = X.T @ Fd @ X
        if self.level_shift > 0.0:
            # occupied projector in the orthonormal basis
            half = X.T @ S @ (0.5 * D_old) @ S @ X
            f = f + self.level_shift * (np.eye(f.shape[0]) - half)
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        if self.smearing > 0.0:
            from .guess import density_from_occupations, fermi_occupations

            occ = fermi_occupations(eps, 2.0 * nocc, self.smearing)
            D = density_from_occupations(C, occ)
        else:
            D = density_from_orbitals(C, nocc)
        if self.damping > 0.0:
            D = (1.0 - self.damping) * D + self.damping * D_old
        return D, C, eps

    # --- integral plumbing ---------------------------------------------------

    def _setup(self):
        with self.config.trace.span("scf.setup", cat="scf",
                                    mode=self.mode, nbf=self.basis.nbf):
            S = overlap_matrix(self.basis)
            T = kinetic_matrix(self.basis)
            V = nuclear_matrix(self.basis)
            hcore = T + V
            if self.mode == "incore":
                self._eri = eri_tensor(self.basis)
            else:
                self._direct = DirectJKBuilder(
                    self.basis, eps=self.screen_eps, config=self.config,
                    pool=self.jk_pool)
        return S, hcore

    def build_jk(self, D: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """J and K for the current density (mode-dispatched)."""
        if self.mode == "incore":
            return jk_from_tensor(self._eri, D)
        if self.k_builder is not None:
            J, _ = self._direct.build(D, want_k=False)
            return J, self.k_builder.update(D)
        return self._direct.build(D)

    # --- SCF loop -------------------------------------------------------------

    def run(self, D0: np.ndarray | None = None) -> SCFResult:
        """Iterate to self-consistency and return the result."""
        S, hcore = self._setup()
        nocc = self.mol.nelectron // 2
        if nocc == 0:
            raise ValueError("no electrons to correlate — check charge")
        if D0 is None:
            D, C, eps = core_guess(hcore, S, nocc)
        else:
            D, C, eps = D0.copy(), None, None
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        diis = DIIS(self.diis_size)
        energy = 0.0
        ex_energy = 0.0
        history: list[float] = []
        converged = False
        it = 0
        tr = self.config.trace
        try:
            for it in range(1, self.max_iter + 1):
                with tr.span("scf.iteration", cat="scf", it=it):
                    J, K = self.build_jk(D)
                    F = hcore + J - 0.5 * K
                    e_el = 0.5 * float(np.einsum("pq,pq->", D, hcore + F))
                    energy = e_el + enuc
                    history.append(energy)
                    ex_energy = -0.25 * float(np.einsum("pq,pq->", K, D))
                    with tr.span("scf.diis", cat="diis"):
                        err = X.T @ (F @ D @ S - S @ D @ F) @ X
                        diis.push(F, err)
                        err_norm = diis.error_norm()
                    # a supplied D0 can have a vanishing commutator while
                    # being mis-normalized for this geometry; require at
                    # least one orbital update before trusting the
                    # convergence test
                    may_exit = D0 is None or it > 1
                    if may_exit and err_norm < self.conv_tol:
                        converged = True
                        break
                    with tr.span("scf.update", cat="scf"):
                        Fd = diis.extrapolate()
                        D, C, eps = self._next_density(Fd, X, S, D, nocc)
        finally:
            # a pool this run spawned dies with the run; an external
            # jk_pool is left running for the caller to reuse
            if self._direct is not None:
                self._direct.close()
        if tr.enabled:
            tr.metrics.set("scf.niter", it)
            tr.metrics.set("scf.converged", int(converged))
        # canonicalize against the final Fock matrix: the loop's C/eps
        # lag one iteration behind (and are the bare core-guess values
        # when convergence hits on iteration 1)
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        return SCFResult(
            energy=energy, energy_nuc=enuc, energy_electronic=energy - enuc,
            converged=converged, niter=it, C=C, eps=eps, D=D,
            F=hcore if it == 0 else F, S=S, hcore=hcore, basis=self.basis,
            exchange_energy=ex_energy, history=history,
        )


def run_rhf(mol: Molecule, basis: str = "sto-3g", **kw) -> SCFResult:
    """One-call RHF: build basis, iterate, return the result."""
    return RHF(mol, basis, **kw).run()
