"""Density-fitted (RI) J/K builder: drop-in replacement for the direct
quartet walk.

One fitted tensor ``B[P,uv] = (P|Q)^{-1/2} (Q|uv)`` is assembled per
geometry (serially or sharded over the worker pool by auxiliary-shell
slices) and then *every* J/K build of every SCF iteration is dense
linear algebra:

* RI-J — two GEMMs: ``gamma_P = B[P,uv] D_uv``, then
  ``J_uv = gamma_P B[P,uv]``;
* RI-K — a half-transform over the occupied space of the density:
  ``D = V diag(w) V^T`` (rank ``nocc`` for SCF densities; signed ``w``
  keeps response densities from the Newton solver exact), then
  ``Y[P,u,i] = B[P,u,v] V_vi`` and ``K = sum_i w_i Y_i Y_i^T``.

The builder exposes the :class:`~repro.scf.fock.DirectJKBuilder`
surface (``build``/``close``/``exchange_energy``) so the SCF drivers,
the SOSCF response builds, and the MD force engine dispatch on
``ExecutionConfig(jk=...)`` without touching their loops; ``reset``
invalidates the cached tensor at geometry jumps (the MD path), which
is what makes the cross-iteration caching safe.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..basis.basisset import BasisSet
from ..basis.auxbasis import build_aux_basis
from ..integrals.eri import ERIEngine
from ..integrals.ri import (aux_shard_slices, inv_sqrt_metric, metric_2c,
                            three_center_slab)

__all__ = ["RIJKBuilder"]

#: Relative cutoff on density eigenvalues entering the RI-K
#: half-transform; directions below it contribute nothing to K at
#: working precision.
DENSITY_EIG_CUT = 1e-12


class RIJKBuilder:
    """Density-fitted J/K builds with a cached per-geometry ``B`` tensor.

    Parameters mirror :class:`~repro.scf.fock.DirectJKBuilder`: ``eps``
    is the Schwarz threshold for the 3-index assembly
    (``|(uv|P)| <= Q_uv * Q_P``, sharing the orbital-pair bound cache
    with the direct path), ``config`` selects the executor and carries
    the telemetry sinks, and an externally owned pool can be shared.

    The expensive work — metric, 3-index tensor, ``B`` — runs lazily on
    the first :meth:`build` after construction or :meth:`reset` and is
    reused by every later build until the next reset; the counters
    ``scf.ri_b_builds`` / ``scf.ri_b_reuses`` in ``--profile`` make the
    caching visible.
    """

    def __init__(self, basis: BasisSet, eps: float = 1e-10,
                 pool=None, config=None, aux: BasisSet | None = None):
        from ..runtime.execconfig import resolve_execution

        self.config = resolve_execution(config, owner="RIJKBuilder")
        self.basis = basis
        self.eps = eps
        self.executor = self.config.executor
        self.degraded = False
        self.engine = ERIEngine(basis)
        self.aux = aux if aux is not None else build_aux_basis(basis)
        self._B: np.ndarray | None = None      # (naux, nbf, nbf)
        self.b_builds = 0                      # B assemblies (geometries)
        self.b_reuses = 0                      # builds served from cache
        self.ints_3c = 0                       # shell triples, last assembly
        self._pool = None
        self._owns_pool = False
        if self.executor == "process":
            from ..runtime.pool import ExchangeWorkerPool

            if pool is not None and pool.basis is not basis:
                pool.reset(basis)
            self._pool = pool or ExchangeWorkerPool(
                basis, nworkers=self.config.nworkers,
                timeout=self.config.pool_timeout,
                max_retries=self.config.pool_max_retries)
            self._owns_pool = pool is None

    # --- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Release the worker pool if this builder owns one (the cached
        ``B`` tensor survives — later builds run serially)."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()
            self._pool = None

    def reset(self, basis: BasisSet) -> None:
        """Re-target at a new geometry: rebuild engine and auxiliary
        basis, invalidate ``B``, and re-point a shared pool.

        This is the MD-step path — the per-geometry tensor must never
        leak across a geometry jump.
        """
        self.basis = basis
        self.engine = ERIEngine(basis)
        self.aux = build_aux_basis(basis)
        self._B = None
        if self._pool is not None and not self._pool.closed \
                and self._pool.basis is not basis:
            self._pool.reset(basis)

    def _degrade(self, reason, tr) -> None:
        """Give up on the pool for the rest of this builder's life."""
        warnings.warn(
            f"RIJKBuilder: worker pool is unrecoverable ({reason}); "
            "falling back to the serial executor for this and later "
            "assemblies", RuntimeWarning, stacklevel=4)
        if self._pool is not None:
            pool, self._pool = self._pool, None
            if self._owns_pool:
                pool.close(force=True)
        self.executor = "serial"
        self.degraded = True
        if tr.enabled:
            tr.metrics.count("pool.degraded_builds", 1)

    # --- B-tensor assembly ---------------------------------------------------

    def _assemble_serial(self, tr) -> np.ndarray:
        slab, nints = three_center_slab(self.basis, self.aux,
                                        range(self.aux.nshell), self.eps,
                                        engine=self.engine)
        self.ints_3c = nints
        return slab

    def _assemble_pooled(self, tr) -> np.ndarray:
        """Shard the 3-index assembly over the pool by aux-shell slices.

        Rank ``r`` evaluates the aux shells of shard ``r`` (LPT-packed
        by function count); the parent scatters each slab's rows into
        the full tensor by aux-shell slice.  Rows for distinct aux
        shells are disjoint, so any shard count — and any recovery
        re-run — assembles the bit-identical tensor.
        """
        from ..runtime.pool import RankJob

        shards = aux_shard_slices(self.aux, self._pool.nworkers)
        jobs = [RankJob(rank=r, pairs=list(shard),
                        cost=float(sum(self.aux.shells[i].nfunc
                                       for i in shard)))
                for r, shard in enumerate(shards)]
        slabs, nints = self._pool.ri3c(self.aux, jobs, eps=self.eps,
                                       tracer=tr)
        self.ints_3c = nints
        T = np.empty((self.aux.nbf, self.basis.nbf, self.basis.nbf))
        aslices = self.aux.shell_slices()
        for r, shard in enumerate(shards):
            slab = slabs[r]
            row = 0
            for ai in shard:
                sl = aslices[ai]
                n = sl.stop - sl.start
                T[sl] = slab[row:row + n]
                row += n
        return T

    def _ensure_b(self) -> np.ndarray:
        """The fitted tensor for the current geometry (cached)."""
        from ..runtime.pool import WorkerDeathError

        tr = self.config.trace
        if self._B is not None:
            self.b_reuses += 1
            if tr.enabled:
                tr.metrics.count("scf.ri_b_reuses", 1)
            return self._B
        with tr.span("ri.metric", cat="ri", naux=self.aux.nbf):
            Vh = inv_sqrt_metric(metric_2c(self.aux))
        with tr.span("ri.assemble", cat="ri", naux=self.aux.nbf,
                     executor=self.executor):
            if self.executor == "process":
                if self._pool is None or self._pool.closed:
                    self._degrade("pool already closed", tr)
                    T = self._assemble_serial(tr)
                else:
                    try:
                        T = self._assemble_pooled(tr)
                    except WorkerDeathError as e:
                        self._degrade(e, tr)
                        T = self._assemble_serial(tr)
            else:
                T = self._assemble_serial(tr)
            naux, nbf = self.aux.nbf, self.basis.nbf
            self._B = (Vh @ T.reshape(naux, -1)).reshape(naux, nbf, nbf)
        self.b_builds += 1
        if tr.enabled:
            tr.metrics.count("scf.ri_b_builds", 1)
            tr.metrics.count("scf.ri_ints3c", self.ints_3c)
            tr.metrics.set("scf.ri_naux", self.aux.nbf)
        return self._B

    def fitted_tensor(self) -> np.ndarray:
        """The cached ``B[P,uv]`` tensor (assembled on first use).

        Exposed for consumers that contract B themselves — e.g. the
        distributed-exchange rank loop, which needs per-rank *partial*
        K matrices rather than the full contraction."""
        return self._ensure_b()

    # --- J/K contractions ----------------------------------------------------

    def build(self, D: np.ndarray, want_j: bool = True, want_k: bool = True
              ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Fitted J and/or K for density ``D`` (AO basis, symmetric)."""
        tr = self.config.trace
        with tr.span("ri.build", cat="scf", executor=self.executor):
            B = self._ensure_b()
            nbf = self.basis.nbf
            J = K = None
            with tr.span("ri.contract", cat="ri", want_j=want_j,
                         want_k=want_k):
                Bf = B.reshape(self.aux.nbf, nbf * nbf)
                if want_j:
                    gamma = Bf @ np.asarray(D, dtype=np.float64).ravel()
                    J = (gamma @ Bf).reshape(nbf, nbf)
                if want_k:
                    w, V = np.linalg.eigh(np.asarray(D, dtype=np.float64))
                    wmax = float(np.abs(w).max()) if w.size else 0.0
                    keep = np.abs(w) > DENSITY_EIG_CUT * max(wmax, 1e-300)
                    if not keep.any():
                        K = np.zeros((nbf, nbf))
                    else:
                        Vk = V[:, keep]                 # (nbf, k)
                        # Y[P,u,i] = sum_v B[P,u,v] Vk[v,i]
                        Y = B @ Vk                      # (naux, nbf, k)
                        Yw = Y * w[keep][None, None, :]
                        K = np.einsum("Pui,Pvi->uv", Yw, Y, optimize=True)
                        K = 0.5 * (K + K.T)
            if tr.enabled:
                tr.metrics.count("scf.ri_builds", 1)
                tr.metrics.absorb_engine(self.engine)
        return J, K

    def exchange_energy(self, D: np.ndarray) -> float:
        """E_x^HF = -1/4 Tr(K[D] D) for a closed-shell density D."""
        _, K = self.build(D, want_j=False, want_k=True)
        return -0.25 * float(np.einsum("pq,pq->", K, D))
