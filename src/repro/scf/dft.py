"""Restricted Kohn-Sham DFT with hybrid functionals (PBE, PBE0).

The PBE0 driver is the paper's production method: the exact-exchange
quarter is what the parallel HFX scheme evaluates, while the semilocal
3/4 of exchange plus correlation is integrated on the Becke grid.
"""

from __future__ import annotations

import time

import numpy as np

from ..chem.molecule import Molecule, nuclear_repulsion
from .diis import DIIS
from .fock import jk_from_tensor
from .functionals import Functional, get_functional
from .grid import MolecularGrid, eval_aos
from .guess import core_guess, density_from_orbitals, orthogonalizer
from .rhf import RHF, SCFResult

__all__ = ["RKS", "run_rks", "XCIntegrator"]


class XCIntegrator:
    """Grid integration of the semilocal exchange-correlation term.

    Caches AO values/gradients on the grid; each SCF iteration costs a
    pair of matrix products plus the pointwise functional evaluation.
    """

    def __init__(self, basis, grid: MolecularGrid, functional: Functional):
        self.grid = grid
        self.functional = functional
        if functional.needs_gradient:
            self.ao, self.ao_grad = eval_aos(basis, grid.points, deriv=1)
        else:
            self.ao = eval_aos(basis, grid.points, deriv=0)
            self.ao_grad = None

    def density_on_grid(self, D: np.ndarray):
        """Electron density (and gradient invariant) on the grid."""
        ao = self.ao
        tmp = ao @ D                   # (npts, nbf)
        rho = np.einsum("gp,gp->g", tmp, ao)
        rho = np.maximum(rho, 0.0)
        if self.ao_grad is None:
            return rho, np.zeros_like(rho)
        grad_rho = 2.0 * np.einsum("dgp,gp->dg", self.ao_grad, tmp)
        sigma = np.einsum("dg,dg->g", grad_rho, grad_rho)
        return rho, (sigma, grad_rho)

    def exc_and_potential(self, D: np.ndarray) -> tuple[float, np.ndarray]:
        """XC energy and the AO-basis XC potential matrix."""
        w = self.grid.weights
        ao = self.ao
        if self.ao_grad is None:
            rho, _ = self.density_on_grid(D)
            exc, vrho, _ = self.functional.evaluate(rho, np.zeros_like(rho))
            e = float(w @ exc)
            wv = w * vrho
            V = (ao * wv[:, None]).T @ ao
            return e, 0.5 * (V + V.T)
        rho, (sigma, grad_rho) = self.density_on_grid(D)
        exc, vrho, vsigma = self.functional.evaluate(rho, sigma)
        e = float(w @ exc)
        wv = w * vrho
        V = (ao * wv[:, None]).T @ ao
        # GGA term: 2 vsigma grad_rho . grad(phi_p phi_q)
        wg = 2.0 * w * vsigma          # (npts,)
        gvec = grad_rho * wg[None, :]  # (3, npts)
        half = np.einsum("dg,dgp->gp", gvec, self.ao_grad)
        V += half.T @ ao + ao.T @ half
        return e, 0.5 * (V + V.T)

    def nelec_on_grid(self, D: np.ndarray) -> float:
        """Integrated density — a grid-quality diagnostic."""
        rho, _ = self.density_on_grid(D)
        rho = rho if isinstance(rho, np.ndarray) else rho[0]
        return float(self.grid.weights @ rho)


class RKS(RHF):
    """Restricted Kohn-Sham SCF on top of the RHF machinery.

    Parameters beyond :class:`RHF`:

    functional:
        ``"lda"``, ``"pbe"``, ``"pbe0"`` (or ``"hf"``, which reduces to
        RHF exactly).
    grid_level:
        ``(n_radial, n_angular)`` for the Becke grid.
    """

    def __init__(self, mol: Molecule, basis="sto-3g",
                 functional: str = "pbe0",
                 grid_level: tuple[int, int] = (30, 26), **kw):
        super().__init__(mol, basis, **kw)
        self.functional = get_functional(functional)
        self.grid_level = grid_level
        self._xc: XCIntegrator | None = None

    def _prepare_xc(self) -> None:
        """Build the Becke grid integrator (no-op for pure HF)."""
        if self.functional.name.lower() != "hf" and self._xc is None:
            grid = MolecularGrid.build(self.mol, *self.grid_level)
            self._xc = XCIntegrator(self.basis, grid, self.functional)

    def run(self, D0: np.ndarray | None = None) -> SCFResult:
        """Iterate the Kohn-Sham equations to self-consistency.

        Dispatches exactly like :meth:`RHF.run`: ``scf_solver="diis"``
        runs the reference loop below, the accelerated solvers share
        :meth:`RHF._run_soscf` through the ``_soscf_*`` hooks.
        """
        if self.scf_solver != "diis":
            return self._run_soscf(D0)
        t0 = time.perf_counter()
        S, hcore = self._setup()
        a_hfx = self.functional.hfx_fraction
        pure_hf = self.functional.name.lower() == "hf"
        self._prepare_xc()
        nocc = self.mol.nelectron // 2
        if D0 is None:
            D, C, eps = core_guess(hcore, S, nocc)
        else:
            D, C, eps = D0.copy(), None, None
        X = orthogonalizer(S)
        enuc = nuclear_repulsion(self.mol)
        diis = DIIS(self.diis_size)
        energy, ex_energy = 0.0, 0.0
        history: list[float] = []
        converged = False
        it = 0
        tr = self.config.trace
        try:
            for it in range(1, self.max_iter + 1):
                with tr.span("scf.iteration", cat="scf", it=it):
                    need_k = a_hfx > 0.0
                    J, K = self.build_jk(D) if need_k else \
                        (self.build_jk(D)[0], None)
                    tr.count("scf.fock_builds", 1)
                    F = hcore + J
                    e2 = 0.5 * float(np.einsum("pq,pq->", D, J))
                    exc = 0.0
                    if need_k:
                        F = F - 0.5 * a_hfx * K
                        ex_energy = -0.25 * float(np.einsum("pq,pq->", K, D))
                        exc += a_hfx * ex_energy
                    if not pure_hf:
                        with tr.span("xc.integrate", cat="xc"):
                            e_xc_sl, Vxc = self._xc.exc_and_potential(D)
                        F = F + Vxc
                        exc += e_xc_sl
                    e_core = float(np.einsum("pq,pq->", D, hcore))
                    energy = e_core + e2 + exc + enuc
                    history.append(energy)
                    with tr.span("scf.diis", cat="diis"):
                        err = X.T @ (F @ D @ S - S @ D @ F) @ X
                        diis.push(F, err)
                        err_norm = diis.error_norm()
                    # see RHF.run: no convergence exit before one orbital
                    # update when starting from a supplied density
                    may_exit = D0 is None or it > 1
                    if may_exit and err_norm < self.conv_tol:
                        converged = True
                        break
                    with tr.span("scf.update", cat="scf"):
                        Fd = diis.extrapolate()
                        D, C, eps = self._next_density(Fd, X, S, D, nocc)
        finally:
            # mirror RHF.run: a pool this run spawned dies with the run
            if self._direct is not None:
                self._direct.close()
        if tr.enabled:
            tr.metrics.set("scf.niter", it)
            tr.metrics.set("scf.converged", int(converged))
            tr.metrics.set("scf.diis_fallbacks", diis.fallbacks)
        # canonicalize against the final Fock matrix (see RHF.run)
        f = X.T @ F @ X
        eps, Cp = np.linalg.eigh(f)
        C = X @ Cp
        return SCFResult(
            energy=energy, energy_nuc=enuc, energy_electronic=energy - enuc,
            converged=converged, niter=it, C=C, eps=eps, D=D, F=F, S=S,
            hcore=hcore, basis=self.basis, exchange_energy=ex_energy,
            history=history, solver="diis", fock_builds=it,
            wall_s=time.perf_counter() - t0,
        )

    # --- SOSCF hooks (see RHF._run_soscf) -------------------------------------

    def _soscf_fock_energy(self, hcore: np.ndarray, enuc: float):
        """Kohn-Sham ``fock_energy(D)``: Coulomb + scaled exact
        exchange + grid-integrated semilocal XC, same operations as one
        reference-loop iteration."""
        a_hfx = self.functional.hfx_fraction
        pure_hf = self.functional.name.lower() == "hf"
        tr = self.config.trace

        def fock_energy(D):
            need_k = a_hfx > 0.0
            J, K = self.build_jk(D) if need_k else \
                (self.build_jk(D)[0], None)
            F = hcore + J
            e2 = 0.5 * float(np.einsum("pq,pq->", D, J))
            exc = 0.0
            ex_energy = 0.0
            if need_k:
                F = F - 0.5 * a_hfx * K
                ex_energy = -0.25 * float(np.einsum("pq,pq->", K, D))
                exc += a_hfx * ex_energy
            if not pure_hf:
                with tr.span("xc.integrate", cat="xc"):
                    e_xc_sl, Vxc = self._xc.exc_and_potential(D)
                F = F + Vxc
                exc += e_xc_sl
            e_core = float(np.einsum("pq,pq->", D, hcore))
            return F, e_core + e2 + exc + enuc, ex_energy
        return fock_energy

    def _soscf_response(self):
        """Kohn-Sham response ``J(d) - 0.5 a_hfx K(d) + f_xc[D]·d``.

        The semilocal XC-kernel term is evaluated *seminumerically*: a
        central finite difference of the cached-grid potential,
        ``(Vxc(D + h u) - Vxc(D - h u)) / 2h`` with ``u = d/|d|_max``.
        Two grid integrations per micro-iteration — a pair of
        ``(npts, nbf)`` matrix products against the cached AO table,
        far cheaper than the ERI response build — buy back the
        quadratic convergence that the bare "HF response"
        approximation forfeits for PBE/PBE0.
        """
        a_hfx = self.functional.hfx_fraction
        pure_hf = self.functional.name.lower() == "hf"

        def response(d, D=None):
            if self.mode == "incore":
                J, K = jk_from_tensor(self._eri, d)
                G = J - 0.5 * a_hfx * K if a_hfx > 0.0 else J
            elif a_hfx > 0.0:
                J, K = self._direct.build(d)
                G = J - 0.5 * a_hfx * K
            else:
                J, _ = self._direct.build(d, want_k=False)
                G = J
            if pure_hf or D is None:
                return G
            nrm = float(np.abs(d).max())
            if nrm <= 0.0:
                return G
            h = 1e-4                       # absolute step along u
            u = d / nrm
            _, Vp = self._xc.exc_and_potential(D + h * u)
            _, Vm = self._xc.exc_and_potential(D - h * u)
            return G + (nrm / (2.0 * h)) * (Vp - Vm)
        return response


def run_rks(mol: Molecule, basis: str = "sto-3g", functional: str = "pbe0",
            **kw) -> SCFResult:
    """One-call restricted Kohn-Sham SCF."""
    return RKS(mol, basis, functional=functional, **kw).run()
