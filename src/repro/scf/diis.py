"""Pulay DIIS (direct inversion in the iterative subspace) convergence
acceleration for SCF."""

from __future__ import annotations

import numpy as np

__all__ = ["DIIS"]


class DIIS:
    """Classic commutator-DIIS.

    Stores up to ``max_vec`` Fock matrices and their orbital-gradient
    residuals ``e = S^-1/2 (FDS - SDF) S^-1/2`` and extrapolates the next
    Fock matrix by minimizing the residual norm in the spanned subspace.
    """

    def __init__(self, max_vec: int = 8):
        if max_vec < 2:
            raise ValueError("DIIS needs at least 2 vectors")
        self.max_vec = max_vec
        self._focks: list[np.ndarray] = []
        self._errs: list[np.ndarray] = []

    @property
    def nvec(self) -> int:
        """Number of stored vectors."""
        return len(self._focks)

    def push(self, fock: np.ndarray, err: np.ndarray) -> None:
        """Add a Fock/error pair, evicting the oldest beyond capacity."""
        self._focks.append(fock.copy())
        self._errs.append(err.copy())
        if len(self._focks) > self.max_vec:
            self._focks.pop(0)
            self._errs.pop(0)

    def error_norm(self) -> float:
        """Max-abs of the most recent residual (the SCF convergence
        measure)."""
        if not self._errs:
            return np.inf
        return float(np.abs(self._errs[-1]).max())

    def extrapolate(self) -> np.ndarray:
        """Solve the DIIS equations and return the extrapolated Fock.

        Falls back to the latest Fock when fewer than two vectors are
        stored or the B matrix is numerically singular.
        """
        n = len(self._focks)
        if n < 2:
            return self._focks[-1]
        B = np.empty((n + 1, n + 1))
        B[-1, :] = -1.0
        B[:, -1] = -1.0
        B[-1, -1] = 0.0
        for i in range(n):
            for j in range(i, n):
                B[i, j] = B[j, i] = float(np.vdot(self._errs[i], self._errs[j]))
        rhs = np.zeros(n + 1)
        rhs[-1] = -1.0
        try:
            coef = np.linalg.solve(B, rhs)[:n]
        except np.linalg.LinAlgError:
            return self._focks[-1]
        if not np.all(np.isfinite(coef)):
            return self._focks[-1]
        out = np.zeros_like(self._focks[-1])
        for c, f in zip(coef, self._focks):
            out += c * f
        return out
