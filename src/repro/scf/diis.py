"""Pulay DIIS (direct inversion in the iterative subspace) convergence
acceleration for SCF."""

from __future__ import annotations

import numpy as np

__all__ = ["DIIS"]

#: Condition-number ceiling for the *scaled* DIIS B system (the
#: error-overlap block normalized by its largest diagonal — uniform
#: scaling of that block leaves the DIIS coefficients invariant, only
#: the Lagrange multiplier rescales).  The raw B matrix is always
#: ill-conditioned near convergence (overlaps ~err^2 against the O(1)
#: constraint border), so the raw condition number cannot distinguish
#: "almost converged" from "singular"; the scaled one can.  Beyond this
#: ceiling the linear solve returns coefficient noise instead of an
#: extrapolation, which is the silent-stall failure mode: the
#: "extrapolated" Fock is garbage and the SCF re-treads the same
#: iterates without the error ever dropping.
_COND_MAX = 1e14


class DIIS:
    """Classic commutator-DIIS.

    Stores up to ``max_vec`` Fock matrices and their orbital-gradient
    residuals ``e = S^-1/2 (FDS - SDF) S^-1/2`` and extrapolates the next
    Fock matrix by minimizing the residual norm in the spanned subspace.

    When the B matrix turns numerically singular (near-duplicate
    residuals from a stalled or oscillating SCF), the *oldest* stored
    vectors are evicted one at a time and the system re-solved until it
    is well-posed again — extrapolation keeps working on the trustworthy
    recent history instead of silently degrading to the raw latest Fock.
    Every eviction increments :attr:`fallbacks` (surfaced as the
    ``scf.diis_fallbacks`` telemetry counter by the SCF drivers).
    """

    def __init__(self, max_vec: int = 8):
        if max_vec < 2:
            raise ValueError("DIIS needs at least 2 vectors")
        self.max_vec = max_vec
        self._focks: list[np.ndarray] = []
        self._errs: list[np.ndarray] = []
        #: Oldest-vector evictions forced by an ill-conditioned B matrix.
        self.fallbacks: int = 0

    @property
    def nvec(self) -> int:
        """Number of stored vectors."""
        return len(self._focks)

    def push(self, fock: np.ndarray, err: np.ndarray) -> None:
        """Add a Fock/error pair, evicting the oldest beyond capacity."""
        self._focks.append(fock.copy())
        self._errs.append(err.copy())
        if len(self._focks) > self.max_vec:
            self._focks.pop(0)
            self._errs.pop(0)

    def error_norm(self) -> float:
        """Max-abs of the most recent residual (the SCF convergence
        measure)."""
        if not self._errs:
            return np.inf
        return float(np.abs(self._errs[-1]).max())

    def _solve(self, n: int) -> np.ndarray | None:
        """DIIS coefficients over the newest ``n`` vectors, or ``None``
        when that system is singular/ill-conditioned."""
        errs = self._errs[-n:]
        B = np.empty((n + 1, n + 1))
        B[-1, :] = -1.0
        B[:, -1] = -1.0
        B[-1, -1] = 0.0
        for i in range(n):
            for j in range(i, n):
                B[i, j] = B[j, i] = float(np.vdot(errs[i], errs[j]))
        rhs = np.zeros(n + 1)
        rhs[-1] = -1.0
        if not np.all(np.isfinite(B)):
            return None
        scale = float(np.abs(np.diagonal(B)[:n]).max())
        if scale > 0.0:
            Bs = B.copy()
            Bs[:n, :n] /= scale
            if np.linalg.cond(Bs) > _COND_MAX:
                return None
        try:
            coef = np.linalg.solve(B, rhs)[:n]
        except np.linalg.LinAlgError:
            return None
        if not np.all(np.isfinite(coef)):
            return None
        return coef

    def extrapolate(self) -> np.ndarray:
        """Solve the DIIS equations and return the extrapolated Fock.

        Returns the (single) stored Fock verbatim when only one vector
        is stored; raises :class:`RuntimeError` on an empty store — the
        "latest Fock" fallback the old contract promised does not exist
        before the first :meth:`push`.  An ill-conditioned B matrix
        evicts the oldest vectors (counted in :attr:`fallbacks`) until
        the solve is well-posed.
        """
        if not self._focks:
            raise RuntimeError(
                "DIIS.extrapolate: no Fock matrices stored — push() at "
                "least one Fock/error pair first")
        n = len(self._focks)
        while n >= 2:
            coef = self._solve(n)
            if coef is not None:
                out = np.zeros_like(self._focks[-1])
                for c, f in zip(coef, self._focks[-n:]):
                    out += c * f
                return out
            # ill-posed: permanently drop the oldest (stalest) vector
            # and re-solve on the trustworthy recent history
            self._focks.pop(0)
            self._errs.pop(0)
            self.fallbacks += 1
            n -= 1
        return self._focks[-1]
