"""Chemistry substrate: elements, molecules, periodic cells, builders."""

from .elements import Element, element, atomic_number, mass_amu, covalent_radius_bohr
from .molecule import Molecule, nuclear_repulsion
from .pbc import Cell, minimum_image, wrap_positions
from . import builders
from .io import read_xyz, write_xyz, read_xyz_trajectory, write_xyz_trajectory

__all__ = [
    "Element", "element", "atomic_number", "mass_amu", "covalent_radius_bohr",
    "Molecule", "nuclear_repulsion",
    "Cell", "minimum_image", "wrap_positions",
    "builders",
    "read_xyz", "write_xyz", "read_xyz_trajectory", "write_xyz_trajectory",
]
