"""Molecule container and geometry operations.

A :class:`Molecule` is an immutable-ish record of atomic numbers and
Cartesian coordinates (Bohr).  It is the lingua franca between the
geometry builders, the basis-set machinery, the SCF driver, and the MD
engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..constants import BOHR_PER_ANGSTROM
from .elements import element, mass_amu

__all__ = ["Molecule", "nuclear_repulsion"]


@dataclass
class Molecule:
    """A molecular geometry.

    Parameters
    ----------
    numbers:
        Atomic numbers, shape ``(natom,)``.
    coords:
        Cartesian coordinates in Bohr, shape ``(natom, 3)``.
    charge:
        Total molecular charge.
    multiplicity:
        Spin multiplicity 2S+1 (the RHF code requires 1).
    """

    numbers: np.ndarray
    coords: np.ndarray
    charge: int = 0
    multiplicity: int = 1
    name: str = ""
    _symbols: tuple[str, ...] = field(init=False, repr=False, default=())

    def __post_init__(self) -> None:
        self.numbers = np.asarray(self.numbers, dtype=np.int64)
        self.coords = np.asarray(self.coords, dtype=np.float64)
        if self.coords.ndim != 2 or self.coords.shape[1] != 3:
            raise ValueError(f"coords must be (natom, 3); got {self.coords.shape}")
        if len(self.numbers) != len(self.coords):
            raise ValueError("numbers and coords disagree on atom count")
        if self.multiplicity < 1:
            raise ValueError("multiplicity must be >= 1")
        self._symbols = tuple(element(int(z)).symbol for z in self.numbers)

    # --- constructors ------------------------------------------------------

    @classmethod
    def from_symbols(
        cls,
        symbols: list[str],
        coords_angstrom,
        charge: int = 0,
        multiplicity: int = 1,
        name: str = "",
    ) -> "Molecule":
        """Build from element symbols and coordinates given in Angstrom."""
        numbers = [element(s).z for s in symbols]
        coords = np.asarray(coords_angstrom, dtype=np.float64) * BOHR_PER_ANGSTROM
        return cls(np.asarray(numbers), coords, charge, multiplicity, name)

    @classmethod
    def from_xyz_string(cls, text: str, charge: int = 0,
                        multiplicity: int = 1) -> "Molecule":
        """Parse the standard XYZ file format (coordinates in Angstrom)."""
        lines = [ln for ln in text.strip().splitlines()]
        natom = int(lines[0].split()[0])
        name = lines[1].strip() if len(lines) > 1 else ""
        symbols, coords = [], []
        for ln in lines[2:2 + natom]:
            parts = ln.split()
            symbols.append(parts[0])
            coords.append([float(x) for x in parts[1:4]])
        if len(symbols) != natom:
            raise ValueError(f"XYZ header promised {natom} atoms, found {len(symbols)}")
        return cls.from_symbols(symbols, coords, charge, multiplicity, name)

    # --- basic properties ---------------------------------------------------

    @property
    def natom(self) -> int:
        """Number of atoms."""
        return len(self.numbers)

    @property
    def symbols(self) -> tuple[str, ...]:
        """Element symbols, one per atom."""
        return self._symbols

    @property
    def nelectron(self) -> int:
        """Number of electrons (sum of Z minus charge)."""
        return int(self.numbers.sum()) - self.charge

    @property
    def masses(self) -> np.ndarray:
        """Atomic masses in electron-mass units, shape ``(natom,)``."""
        from ..constants import EMASS_PER_AMU

        return np.array([mass_amu(int(z)) for z in self.numbers]) * EMASS_PER_AMU

    # --- geometry -----------------------------------------------------------

    def distance(self, i: int, j: int) -> float:
        """Interatomic distance in Bohr."""
        return float(np.linalg.norm(self.coords[i] - self.coords[j]))

    def distance_matrix(self) -> np.ndarray:
        """All pairwise distances in Bohr, shape ``(natom, natom)``."""
        d = self.coords[:, None, :] - self.coords[None, :, :]
        return np.sqrt((d * d).sum(axis=-1))

    def center_of_mass(self) -> np.ndarray:
        """Center of mass in Bohr."""
        m = self.masses
        return (m[:, None] * self.coords).sum(axis=0) / m.sum()

    def translated(self, shift: np.ndarray) -> "Molecule":
        """Return a copy translated by ``shift`` (Bohr)."""
        return Molecule(self.numbers.copy(), self.coords + np.asarray(shift),
                        self.charge, self.multiplicity, self.name)

    def rotated(self, axis: np.ndarray, angle: float) -> "Molecule":
        """Return a copy rotated by ``angle`` radians about ``axis``
        (through the origin, Rodrigues formula)."""
        k = np.asarray(axis, dtype=np.float64)
        k = k / np.linalg.norm(k)
        c, s = np.cos(angle), np.sin(angle)
        kmat = np.array([[0, -k[2], k[1]], [k[2], 0, -k[0]], [-k[1], k[0], 0]])
        rot = np.eye(3) * c + s * kmat + (1 - c) * np.outer(k, k)
        return Molecule(self.numbers.copy(), self.coords @ rot.T,
                        self.charge, self.multiplicity, self.name)

    def with_coords(self, coords: np.ndarray) -> "Molecule":
        """Return a copy with replaced coordinates (Bohr)."""
        return Molecule(self.numbers.copy(), np.asarray(coords, dtype=np.float64),
                        self.charge, self.multiplicity, self.name)

    def __add__(self, other: "Molecule") -> "Molecule":
        """Union of two geometries (charges add, multiplicity reset to 1)."""
        return Molecule(
            np.concatenate([self.numbers, other.numbers]),
            np.vstack([self.coords, other.coords]),
            self.charge + other.charge,
            1,
            f"{self.name}+{other.name}" if self.name and other.name else
            (self.name or other.name),
        )

    def to_xyz_string(self, comment: str | None = None) -> str:
        """Serialize to XYZ format (Angstrom)."""
        from ..constants import ANGSTROM_PER_BOHR

        lines = [str(self.natom), comment if comment is not None else self.name]
        for sym, xyz in zip(self.symbols, self.coords * ANGSTROM_PER_BOHR):
            lines.append(f"{sym:<3s} {xyz[0]:15.8f} {xyz[1]:15.8f} {xyz[2]:15.8f}")
        return "\n".join(lines) + "\n"


def nuclear_repulsion(mol: Molecule) -> float:
    """Classical Coulomb repulsion energy of the nuclei (Hartree)."""
    e = 0.0
    z = mol.numbers.astype(np.float64)
    r = mol.distance_matrix()
    iu = np.triu_indices(mol.natom, k=1)
    if iu[0].size:
        e = float(((z[iu[0]] * z[iu[1]]) / r[iu]).sum())
    return e
