"""Periodic boundary conditions: cells, wrapping, minimum image.

The condensed-phase workloads of the paper (liquid electrolyte boxes)
live in orthorhombic cells.  We support general triclinic cells but the
builders only emit orthorhombic ones, which keeps the minimum-image
convention exact.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Cell", "minimum_image", "wrap_positions"]


@dataclass(frozen=True)
class Cell:
    """A periodic simulation cell.

    Parameters
    ----------
    vectors:
        Row-major cell vectors in Bohr, shape ``(3, 3)``; row *i* is the
        i-th lattice vector.
    """

    vectors: np.ndarray

    def __post_init__(self) -> None:
        v = np.asarray(self.vectors, dtype=np.float64)
        if v.shape != (3, 3):
            raise ValueError(f"cell vectors must be (3,3); got {v.shape}")
        if abs(np.linalg.det(v)) < 1e-12:
            raise ValueError("cell vectors are singular (zero volume)")
        object.__setattr__(self, "vectors", v)

    @classmethod
    def cubic(cls, a: float) -> "Cell":
        """Cubic cell of edge ``a`` Bohr."""
        return cls(np.eye(3) * a)

    @classmethod
    def orthorhombic(cls, a: float, b: float, c: float) -> "Cell":
        """Orthorhombic cell with edges ``a, b, c`` Bohr."""
        return cls(np.diag([a, b, c]))

    @property
    def volume(self) -> float:
        """Cell volume in Bohr^3."""
        return float(abs(np.linalg.det(self.vectors)))

    @property
    def lengths(self) -> np.ndarray:
        """Lengths of the three lattice vectors."""
        return np.linalg.norm(self.vectors, axis=1)

    @property
    def is_orthorhombic(self) -> bool:
        """True when off-diagonal cell components vanish."""
        off = self.vectors - np.diag(np.diag(self.vectors))
        return bool(np.all(np.abs(off) < 1e-12))

    def to_fractional(self, coords: np.ndarray) -> np.ndarray:
        """Cartesian (Bohr) -> fractional coordinates."""
        return np.asarray(coords) @ np.linalg.inv(self.vectors)

    def to_cartesian(self, frac: np.ndarray) -> np.ndarray:
        """Fractional -> Cartesian (Bohr) coordinates."""
        return np.asarray(frac) @ self.vectors


def wrap_positions(coords: np.ndarray, cell: Cell) -> np.ndarray:
    """Wrap Cartesian positions into the home cell ``[0, 1)^3``."""
    frac = cell.to_fractional(coords)
    frac -= np.floor(frac)
    return cell.to_cartesian(frac)


def minimum_image(dvec: np.ndarray, cell: Cell) -> np.ndarray:
    """Apply the minimum-image convention to displacement vectors.

    Exact for orthorhombic cells (all the paper's boxes); for triclinic
    cells this is the standard nearest-lattice-point approximation,
    valid when displacements are shorter than half the shortest cell
    height.
    """
    frac = cell.to_fractional(dvec)
    frac -= np.round(frac)
    return cell.to_cartesian(frac)
