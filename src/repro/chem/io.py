"""File I/O for molecular geometries (XYZ format)."""

from __future__ import annotations

from pathlib import Path

from .molecule import Molecule

__all__ = ["read_xyz", "write_xyz", "read_xyz_trajectory", "write_xyz_trajectory"]


def read_xyz(path: str | Path, charge: int = 0, multiplicity: int = 1) -> Molecule:
    """Read a single-frame XYZ file (coordinates in Angstrom)."""
    return Molecule.from_xyz_string(Path(path).read_text(), charge, multiplicity)


def write_xyz(path: str | Path, mol: Molecule, comment: str | None = None) -> None:
    """Write a molecule to an XYZ file."""
    Path(path).write_text(mol.to_xyz_string(comment))


def read_xyz_trajectory(path: str | Path) -> list[Molecule]:
    """Read a concatenated multi-frame XYZ trajectory."""
    text = Path(path).read_text()
    lines = text.splitlines()
    frames: list[Molecule] = []
    i = 0
    while i < len(lines):
        if not lines[i].strip():
            i += 1
            continue
        natom = int(lines[i].split()[0])
        block = "\n".join(lines[i:i + natom + 2])
        frames.append(Molecule.from_xyz_string(block))
        i += natom + 2
    return frames


def write_xyz_trajectory(path: str | Path, frames: list[Molecule]) -> None:
    """Write a multi-frame XYZ trajectory."""
    Path(path).write_text(
        "".join(m.to_xyz_string(f"frame {i}") for i, m in enumerate(frames))
    )
