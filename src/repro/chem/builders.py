"""Geometry builders for every system the reproduction exercises.

Three families:

* tiny validation molecules (H2, HeH+, LiH, water, water dimer) used by
  the integral/SCF unit tests;
* lithium/air battery species: propylene carbonate (PC), candidate
  alternative solvents (DMSO, acetonitrile), lithium peroxide /
  superoxide, and SCF-feasible *model fragments* of the solvents
  (carbonate core, sulfoxide core) used for reaction energetics;
* condensed-phase builders (water boxes, electrolyte boxes on a lattice)
  used by the HFX workload generator and the classical-MD examples.

All builder coordinates are specified in Angstrom (the conventional unit
of the structural literature) and converted to Bohr by
:meth:`Molecule.from_symbols`.
"""

from __future__ import annotations

import numpy as np

from .molecule import Molecule
from .pbc import Cell
from ..constants import BOHR_PER_ANGSTROM

__all__ = [
    "h2", "heh_plus", "lih", "o2", "water", "water_dimer", "water_cluster",
    "water_box", "methane",
    "propylene_carbonate", "dmso", "acetonitrile",
    "li2o2", "lio2", "peroxide_dianion", "superoxide_anion", "li_atom",
    "carbonate_model", "sulfoxide_model", "nitrile_model",
    "electrolyte_box", "replicate_on_lattice",
]


# --------------------------------------------------------------------------
# tiny validation molecules
# --------------------------------------------------------------------------

def h2(r: float = 0.7414) -> Molecule:
    """Hydrogen molecule at bond length ``r`` Angstrom (default: exp.)."""
    return Molecule.from_symbols(["H", "H"], [[0, 0, 0], [0, 0, r]], name="H2")


def heh_plus(r: float = 0.772) -> Molecule:
    """HeH+ cation — the classic 2-electron SCF test case."""
    return Molecule.from_symbols(["He", "H"], [[0, 0, 0], [0, 0, r]],
                                 charge=1, name="HeH+")


def lih(r: float = 1.5957) -> Molecule:
    """Lithium hydride at the experimental bond length."""
    return Molecule.from_symbols(["Li", "H"], [[0, 0, 0], [0, 0, r]], name="LiH")


def o2(r: float = 1.2075) -> Molecule:
    """O2 (run as closed-shell singlet here; fine for integral tests)."""
    return Molecule.from_symbols(["O", "O"], [[0, 0, 0], [0, 0, r]], name="O2")


def methane() -> Molecule:
    """CH4, tetrahedral, r(CH) = 1.087 Angstrom."""
    r = 1.087
    t = r / np.sqrt(3.0)
    coords = [[0, 0, 0], [t, t, t], [t, -t, -t], [-t, t, -t], [-t, -t, t]]
    return Molecule.from_symbols(["C", "H", "H", "H", "H"], coords, name="CH4")


def water() -> Molecule:
    """A single water molecule at the experimental gas-phase geometry."""
    roh, theta = 0.9572, np.deg2rad(104.52)
    x = roh * np.sin(theta / 2)
    z = roh * np.cos(theta / 2)
    return Molecule.from_symbols(
        ["O", "H", "H"],
        [[0.0, 0.0, 0.0], [x, 0.0, z], [-x, 0.0, z]],
        name="H2O",
    )


def water_dimer(roo: float = 2.98) -> Molecule:
    """Hydrogen-bonded water dimer with O...O distance ``roo`` Angstrom."""
    donor = water()
    acceptor = water().rotated(np.array([0.0, 1.0, 0.0]), np.pi)
    acceptor = acceptor.translated(np.array([0.0, 0.0, roo]) * BOHR_PER_ANGSTROM)
    dimer = donor + acceptor
    dimer.name = "(H2O)2"
    return dimer


# --------------------------------------------------------------------------
# lithium/air battery species
# --------------------------------------------------------------------------

def propylene_carbonate() -> Molecule:
    """Propylene carbonate, C4H6O3 — the paper's reference electrolyte.

    Approximate ring geometry (5-membered O-C(=O)-O-CH(CH3)-CH2 ring);
    adequate for screening statistics, force-field MD, and workload
    generation.  The quantum reaction energetics use
    :func:`carbonate_model` instead.
    """
    coords = [
        ("C", [0.000, 0.000, 0.000]),    # carbonyl carbon
        ("O", [0.000, 1.190, 0.000]),    # carbonyl oxygen (C=O)
        ("O", [1.100, -0.740, 0.000]),   # ring O (to CH2)
        ("O", [-1.100, -0.740, 0.000]),  # ring O (to CH)
        ("C", [0.740, -2.090, 0.120]),   # ring CH2
        ("C", [-0.760, -2.090, -0.200]), # ring CH (bears methyl)
        ("C", [-1.560, -3.050, 0.650]),  # methyl carbon
        ("H", [1.010, -2.400, 1.130]),
        ("H", [1.280, -2.700, -0.610]),
        ("H", [-0.930, -2.320, -1.250]),
        ("H", [-1.260, -4.070, 0.510]),
        ("H", [-2.620, -2.990, 0.410]),
        ("H", [-1.420, -2.790, 1.700]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="PC")


def dmso() -> Molecule:
    """Dimethyl sulfoxide, (CH3)2SO — the canonical stabler alternative."""
    coords = [
        ("S", [0.000, 0.000, 0.320]),
        ("O", [0.000, 1.480, 0.680]),
        ("C", [1.370, -0.680, -0.620]),
        ("C", [-1.370, -0.680, -0.620]),
        ("H", [1.300, -0.370, -1.660]),
        ("H", [2.300, -0.330, -0.180]),
        ("H", [1.330, -1.770, -0.560]),
        ("H", [-1.300, -0.370, -1.660]),
        ("H", [-2.300, -0.330, -0.180]),
        ("H", [-1.330, -1.770, -0.560]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="DMSO")


def acetonitrile() -> Molecule:
    """Acetonitrile CH3CN — another aprotic candidate solvent."""
    coords = [
        ("C", [0.000, 0.000, 0.000]),   # methyl carbon
        ("C", [0.000, 0.000, 1.460]),   # nitrile carbon
        ("N", [0.000, 0.000, 2.617]),
        ("H", [1.027, 0.000, -0.370]),
        ("H", [-0.513, 0.889, -0.370]),
        ("H", [-0.513, -0.889, -0.370]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="ACN")


def li2o2() -> Molecule:
    """Molecular Li2O2 — planar rhombus (Li bridging a peroxide unit)."""
    doo = 1.55
    dli = 1.75
    x = np.sqrt(max(dli ** 2 - (doo / 2) ** 2, 0.0))
    coords = [
        ("O", [0.0, 0.0, +doo / 2]),
        ("O", [0.0, 0.0, -doo / 2]),
        ("Li", [+x, 0.0, 0.0]),
        ("Li", [-x, 0.0, 0.0]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="Li2O2")


def lio2() -> Molecule:
    """Lithium superoxide LiO2 (side-on C2v, closed-shell cation model
    is handled by callers; geometry only here)."""
    doo = 1.34
    dli = 1.77
    x = np.sqrt(max(dli ** 2 - (doo / 2) ** 2, 0.0))
    coords = [
        ("O", [0.0, 0.0, +doo / 2]),
        ("O", [0.0, 0.0, -doo / 2]),
        ("Li", [x, 0.0, 0.0]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="LiO2")


def superoxide_anion(r: float = 1.33) -> Molecule:
    """The superoxide anion O2^- — the primary discharge species of the
    lithium/air cathode (doublet; needs the UHF driver)."""
    return Molecule.from_symbols(["O", "O"], [[0, 0, 0], [0, 0, r]],
                                 charge=-1, multiplicity=2, name="O2-")


def peroxide_dianion(r: float = 1.49) -> Molecule:
    """The peroxide dianion O2^2- — the nucleophile of the degradation
    mechanism (closed-shell, 18 electrons; r(O-O) from solid Li2O2)."""
    return Molecule.from_symbols(["O", "O"], [[0, 0, 0], [0, 0, r]],
                                 charge=-2, name="O2--")


def li_atom() -> Molecule:
    """A bare lithium atom (doublet)."""
    return Molecule.from_symbols(["Li"], [[0.0, 0.0, 0.0]],
                                 multiplicity=2, name="Li")


# --- SCF-feasible model fragments ------------------------------------------

def carbonate_model() -> Molecule:
    """Carbonic acid H2CO3 — the carbonate motif of PC.

    Peroxide attack on PC proceeds at the carbonyl carbon of the cyclic
    carbonate; H2CO3 carries the identical electrophilic center at a
    size our STO-3G SCF handles in milliseconds, so reaction energetics
    computed on it preserve the PC-vs-alternative-solvent ordering.
    """
    coords = [
        ("C", [0.000, 0.000, 0.000]),
        ("O", [0.000, 1.210, 0.000]),      # C=O
        ("O", [1.160, -0.700, 0.000]),     # C-OH
        ("O", [-1.160, -0.700, 0.000]),    # C-OH
        ("H", [1.030, -1.660, 0.000]),
        ("H", [-1.030, -1.660, 0.000]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="carbonate-model")


def sulfoxide_model() -> Molecule:
    """H2SO — the sulfinyl motif of DMSO with H caps."""
    coords = [
        ("S", [0.000, 0.000, 0.000]),
        ("O", [0.000, 1.480, 0.320]),
        ("H", [1.230, -0.470, -0.540]),
        ("H", [-1.230, -0.470, -0.540]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="sulfoxide-model")


def nitrile_model() -> Molecule:
    """HCN — the nitrile motif of acetonitrile."""
    coords = [
        ("H", [0.0, 0.0, -1.064]),
        ("C", [0.0, 0.0, 0.000]),
        ("N", [0.0, 0.0, 1.156]),
    ]
    return Molecule.from_symbols([s for s, _ in coords],
                                 [c for _, c in coords],
                                 name="nitrile-model")


# --------------------------------------------------------------------------
# condensed-phase builders
# --------------------------------------------------------------------------

def replicate_on_lattice(unit: Molecule, nrep: tuple[int, int, int],
                         spacing_bohr: float, seed: int = 0,
                         jitter: float = 0.0) -> tuple[Molecule, Cell]:
    """Tile ``unit`` on an ``nrep`` cubic lattice with randomized
    orientations (deterministic via ``seed``).

    Returns the composite molecule and the periodic cell.  ``jitter``
    displaces each copy uniformly in ``[-jitter, jitter]`` Bohr per axis,
    which breaks lattice artifacts in screening statistics.
    """
    rng = np.random.default_rng(seed)
    unit = unit.translated(-unit.center_of_mass())
    mols = []
    for ix in range(nrep[0]):
        for iy in range(nrep[1]):
            for iz in range(nrep[2]):
                axis = rng.normal(size=3)
                angle = rng.uniform(0, 2 * np.pi)
                m = unit.rotated(axis, angle)
                shift = (np.array([ix, iy, iz], dtype=float) + 0.5) * spacing_bohr
                if jitter > 0:
                    shift = shift + rng.uniform(-jitter, jitter, size=3)
                mols.append(m.translated(shift))
    total = mols[0]
    for m in mols[1:]:
        total = total + m
    total.name = f"{unit.name}x{nrep[0] * nrep[1] * nrep[2]}"
    cell = Cell.cubic(spacing_bohr * max(nrep))
    return total, cell


def water_cluster(n: int, seed: int = 0) -> Molecule:
    """An ``n``-molecule water cluster on a compact lattice (gas-phase,
    no cell) — used for real-SCF screening studies."""
    side = int(np.ceil(n ** (1.0 / 3.0)))
    box, _ = replicate_on_lattice(water(), (side, side, side),
                                  spacing_bohr=5.7, seed=seed)
    keep = slice(0, 3 * n)
    mol = Molecule(box.numbers[keep], box.coords[keep], name=f"(H2O){n}")
    return mol


def water_box(n: int, density_gcc: float = 0.997, seed: int = 0
              ) -> tuple[Molecule, Cell]:
    """A periodic box of ``n`` water molecules at liquid density.

    Cell edge is derived from the target mass density; molecules sit on
    a jittered lattice with random orientations — the configuration is
    statistically liquid-like enough for screening/workload statistics.
    """
    mass_g = n * 18.01528 / 6.02214076e23
    vol_cm3 = mass_g / density_gcc
    edge_cm = vol_cm3 ** (1.0 / 3.0)
    edge_bohr = edge_cm * 1e8 * BOHR_PER_ANGSTROM  # cm -> Angstrom -> Bohr
    side = int(np.ceil(n ** (1.0 / 3.0)))
    spacing = edge_bohr / side
    box, _ = replicate_on_lattice(water(), (side, side, side),
                                  spacing_bohr=spacing, seed=seed,
                                  jitter=0.15 * spacing)
    keep = slice(0, 3 * n)
    mol = Molecule(box.numbers[keep], box.coords[keep], name=f"(H2O){n}-box")
    return mol, Cell.cubic(edge_bohr)


def electrolyte_box(solvent: str = "PC", n_solvent: int = 16,
                    with_peroxide: bool = True, seed: int = 1
                    ) -> tuple[Molecule, Cell]:
    """A model lithium/air electrolyte: ``n_solvent`` solvent molecules
    plus (optionally) one Li2O2 unit, on a jittered lattice.

    ``solvent`` is one of ``"PC"``, ``"DMSO"``, ``"ACN"``.
    """
    units = {"PC": propylene_carbonate, "DMSO": dmso, "ACN": acetonitrile}
    try:
        unit = units[solvent]()
    except KeyError:
        raise ValueError(f"unknown solvent {solvent!r}; pick from {sorted(units)}") \
            from None
    side = int(np.ceil(n_solvent ** (1.0 / 3.0)))
    spacing = 11.0  # Bohr; ~5.8 Angstrom between molecular centers
    box, cell = replicate_on_lattice(unit, (side, side, side),
                                     spacing_bohr=spacing, seed=seed,
                                     jitter=0.8)
    natom_unit = unit.natom
    keep = slice(0, natom_unit * n_solvent)
    mol = Molecule(box.numbers[keep], box.coords[keep],
                   name=f"{solvent}x{n_solvent}")
    if with_peroxide:
        center = cell.lengths / 2.0
        perox = li2o2()
        perox = perox.translated(center - perox.center_of_mass())
        mol = mol + perox
        mol.name = f"{solvent}x{n_solvent}+Li2O2"
    return mol, cell
