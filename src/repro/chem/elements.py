"""Periodic-table data for the elements this reproduction touches.

The lithium/air electrolyte chemistry of the paper involves H, Li, C, N,
O, S (propylene carbonate, DMSO/sulfone-class alternative solvents,
Li2O2/LiO2).  We carry the first 18 elements plus a few metals so
geometry builders and force fields never trip over missing data.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Element",
    "ELEMENTS",
    "SYMBOLS",
    "atomic_number",
    "element",
    "mass_amu",
    "covalent_radius_bohr",
]

from ..constants import BOHR_PER_ANGSTROM


@dataclass(frozen=True)
class Element:
    """Immutable record of per-element data.

    Attributes
    ----------
    z : atomic number
    symbol : IUPAC symbol
    mass : standard atomic weight in amu
    covalent_radius : covalent radius in Angstrom (Cordero 2008 values)
    """

    z: int
    symbol: str
    mass: float
    covalent_radius: float


_DATA = [
    Element(1, "H", 1.00794, 0.31),
    Element(2, "He", 4.002602, 0.28),
    Element(3, "Li", 6.941, 1.28),
    Element(4, "Be", 9.012182, 0.96),
    Element(5, "B", 10.811, 0.84),
    Element(6, "C", 12.0107, 0.76),
    Element(7, "N", 14.0067, 0.71),
    Element(8, "O", 15.9994, 0.66),
    Element(9, "F", 18.9984032, 0.57),
    Element(10, "Ne", 20.1797, 0.58),
    Element(11, "Na", 22.98976928, 1.66),
    Element(12, "Mg", 24.305, 1.41),
    Element(13, "Al", 26.9815386, 1.21),
    Element(14, "Si", 28.0855, 1.11),
    Element(15, "P", 30.973762, 1.07),
    Element(16, "S", 32.065, 1.05),
    Element(17, "Cl", 35.453, 1.02),
    Element(18, "Ar", 39.948, 1.06),
    Element(19, "K", 39.0983, 2.03),
    Element(20, "Ca", 40.078, 1.76),
    Element(26, "Fe", 55.845, 1.32),
    Element(29, "Cu", 63.546, 1.32),
    Element(30, "Zn", 65.38, 1.22),
]

ELEMENTS: dict[int, Element] = {e.z: e for e in _DATA}
SYMBOLS: dict[str, Element] = {e.symbol: e for e in _DATA}
SYMBOLS.update({e.symbol.upper(): e for e in _DATA})
SYMBOLS.update({e.symbol.lower(): e for e in _DATA})


def element(key: int | str) -> Element:
    """Look up an :class:`Element` by atomic number or symbol.

    Raises ``KeyError`` with a helpful message for unknown elements.
    """
    table = ELEMENTS if isinstance(key, int) else SYMBOLS
    try:
        return table[key]
    except KeyError:
        raise KeyError(f"unknown element {key!r}; known: "
                       f"{sorted(e.symbol for e in _DATA)}") from None


def atomic_number(symbol: str) -> int:
    """Atomic number for an element symbol (case-insensitive)."""
    return element(symbol).z


def mass_amu(key: int | str) -> float:
    """Standard atomic weight (amu)."""
    return element(key).mass


def covalent_radius_bohr(key: int | str) -> float:
    """Covalent radius in Bohr (converted from the tabulated Angstrom)."""
    return element(key).covalent_radius * BOHR_PER_ANGSTROM
