"""Gaussian basis sets: shells, built-in data, shell pairs."""

from .shell import Shell, cartesian_components, ncart, primitive_norm
from .data import BASIS_LIBRARY, available_basis_sets
from .basisset import BasisSet, build_basis
from .shellpair import ShellPair, build_shell_pairs
from .auxbasis import build_aux_basis, even_tempered_exponents

__all__ = [
    "Shell", "cartesian_components", "ncart", "primitive_norm",
    "BASIS_LIBRARY", "available_basis_sets",
    "BasisSet", "build_basis",
    "ShellPair", "build_shell_pairs",
    "build_aux_basis", "even_tempered_exponents",
]
