"""Basis-set construction: molecule + basis name -> list of shells.

The :class:`BasisSet` is the central bookkeeping object of the quantum
side of the package: it owns the shells, the per-shell offsets into the
flat AO index space, and the AO labels the reports use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..chem.molecule import Molecule
from .data import BASIS_LIBRARY
from .shell import Shell, AM_LABELS, cartesian_components

__all__ = ["BasisSet", "build_basis"]


@dataclass
class BasisSet:
    """A molecule's basis: shells plus AO-index bookkeeping."""

    molecule: Molecule
    name: str
    shells: list[Shell]
    offsets: np.ndarray = field(init=False)   # first AO index of each shell
    nbf: int = field(init=False)

    def __post_init__(self) -> None:
        off = np.zeros(len(self.shells) + 1, dtype=np.int64)
        for i, sh in enumerate(self.shells):
            off[i + 1] = off[i] + sh.nfunc
        self.offsets = off[:-1]
        self.nbf = int(off[-1])

    @property
    def nshell(self) -> int:
        """Number of shells."""
        return len(self.shells)

    def shell_slice(self, i: int) -> slice:
        """AO-index slice covered by shell ``i``."""
        return slice(int(self.offsets[i]),
                     int(self.offsets[i]) + self.shells[i].nfunc)

    def shell_slices(self) -> list[slice]:
        """All per-shell AO slices, computed once per basis object.

        Every integral walk (4-index tensor fill, J/K scatters, and the
        2-/3-index RI builders) needs the same shell->AO slice list;
        caching it here gives them one shared copy instead of a
        per-call rebuild.
        """
        cached = self.__dict__.get("_slices_cache")
        if cached is None:
            cached = [self.shell_slice(i) for i in range(self.nshell)]
            self.__dict__["_slices_cache"] = cached
        return cached

    def ao_labels(self) -> list[str]:
        """Human-readable labels like ``'0 O 2px'`` for every AO."""
        labels = []
        per_atom_count: dict[int, dict[int, int]] = {}
        for sh in self.shells:
            counts = per_atom_count.setdefault(sh.atom, {})
            n_before = counts.get(sh.l, 0)
            counts[sh.l] = n_before + 1
            pq = n_before + sh.l + 1  # crude principal quantum number label
            sym = self.molecule.symbols[sh.atom] if sh.atom >= 0 else "X"
            for (lx, ly, lz) in cartesian_components(sh.l):
                tag = AM_LABELS[sh.l] + "x" * lx + "y" * ly + "z" * lz
                labels.append(f"{sh.atom} {sym} {pq}{tag}")
        return labels

    def shell_centers(self) -> np.ndarray:
        """Shell centers, shape ``(nshell, 3)`` Bohr."""
        return np.array([sh.center for sh in self.shells])

    def max_l(self) -> int:
        """Highest angular momentum present."""
        return max(sh.l for sh in self.shells)


def build_basis(mol: Molecule, name: str = "sto-3g") -> BasisSet:
    """Construct a :class:`BasisSet` for ``mol`` from a built-in library set.

    Pople shared-exponent SP shells are expanded into separate s and p
    shells (same exponents, distinct contraction columns), which is what
    the integral engine expects.
    """
    key = name.lower()
    try:
        table = BASIS_LIBRARY[key]
    except KeyError:
        raise ValueError(
            f"unknown basis {name!r}; available: {sorted(BASIS_LIBRARY)}"
        ) from None
    shells: list[Shell] = []
    for iatom, sym in enumerate(mol.symbols):
        if sym not in table:
            raise ValueError(f"basis {name!r} has no data for element {sym}")
        for shell_type, exps, coef_by_l in table[sym]:
            ls = [0] if shell_type == "S" else sorted(coef_by_l)
            for l in ls:
                shells.append(Shell(l, np.array(exps),
                                    np.array(coef_by_l[l]),
                                    mol.coords[iatom], atom=iatom))
    return BasisSet(mol, key, shells)
