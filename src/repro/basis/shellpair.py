"""Shell-pair data: the precomputed quantities every integral needs.

A :class:`ShellPair` expands two contracted shells into their primitive
pair set, applies the Gaussian product rule, and caches the Hermite
expansion coefficients per Cartesian dimension.  Building these once
and reusing them across one-electron integrals, Schwarz bounds, and
every ERI quartet the pair participates in is the single biggest
serial-performance lever of the engine — exactly the role of CPMD's
precomputed pair lists in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .shell import Shell

__all__ = ["ShellPair", "build_shell_pairs"]


@dataclass
class ShellPair:
    """Primitive-pair expansion of a contracted shell pair."""

    sha: Shell
    shb: Shell
    ia: int   # shell indices in the parent basis (for bookkeeping)
    ib: int
    a: np.ndarray = field(init=False)   # (n,) exponents from shell A
    b: np.ndarray = field(init=False)   # (n,) exponents from shell B
    p: np.ndarray = field(init=False)   # (n,) total exponents
    P: np.ndarray = field(init=False)   # (n, 3) product centers
    E: list[np.ndarray] = field(init=False)  # per-dim Hermite coefs
    # combined contraction weights W[compA, compB, n]
    W: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        # local import: breaks the basis <-> integrals package cycle
        from ..integrals.mcmurchie import hermite_e

        A, B = self.sha.center, self.shb.center
        na, nb = self.sha.nprim, self.shb.nprim
        self.a = np.repeat(self.sha.exps, nb)
        self.b = np.tile(self.shb.exps, na)
        self.p = self.a + self.b
        self.P = (self.a[:, None] * A + self.b[:, None] * B) / self.p[:, None]
        la, lb = self.sha.l, self.shb.l
        self.E = [hermite_e(la, lb, self.a, self.b, float(A[d] - B[d]))
                  for d in range(3)]
        ca = self.sha.norm_coefs   # (ncompA, na)
        cb = self.shb.norm_coefs   # (ncompB, nb)
        self.W = np.einsum("xi,yj->xyij", ca, cb).reshape(
            ca.shape[0], cb.shape[0], na * nb)

    @property
    def nprim(self) -> int:
        """Number of primitive pairs."""
        return len(self.p)

    @property
    def lab(self) -> int:
        """Combined angular momentum la + lb."""
        return self.sha.l + self.shb.l

    def hermite_lambda(self) -> tuple[np.ndarray, np.ndarray]:
        """Flattened Hermite representation of the pair (cached — every
        ERI quartet this pair participates in reuses it).

        Returns
        -------
        ``(idx, lam)`` where ``idx`` has shape ``(nherm, 3)`` listing the
        Hermite orders ``(t, u, v)`` with ``t+u+v <= lab`` actually
        reachable, and ``lam`` has shape
        ``(ncompA, ncompB, nherm, nprim)`` holding
        ``W * Ex[t] * Ey[u] * Ez[v]`` per component pair.
        """
        cached = getattr(self, "_lambda_cache", None)
        if cached is not None:
            return cached
        la, lb = self.sha.l, self.shb.l
        compsA = self.sha.components
        compsB = self.shb.components
        L = la + lb
        idx = np.array([(t, u, v)
                        for t in range(L + 1)
                        for u in range(L + 1 - t)
                        for v in range(L + 1 - t - u)], dtype=np.int64)
        lam = np.zeros((len(compsA), len(compsB), len(idx), self.nprim))
        Ex, Ey, Ez = self.E
        for xa, (lxa, lya, lza) in enumerate(compsA):
            for xb, (lxb, lyb, lzb) in enumerate(compsB):
                w = self.W[xa, xb]
                for h, (t, u, v) in enumerate(idx):
                    if t > lxa + lxb or u > lya + lyb or v > lza + lzb:
                        continue
                    lam[xa, xb, h] = (w * Ex[lxa, lxb, t]
                                      * Ey[lya, lyb, u] * Ez[lza, lzb, v])
        self._lambda_cache = (idx, lam)
        return idx, lam


def build_shell_pairs(shells: list[Shell],
                      threshold: float = 0.0) -> dict[tuple[int, int], ShellPair]:
    """Build all significant shell pairs ``(i, j)`` with ``i <= j``.

    ``threshold`` drops pairs whose Gaussian overlap prefactor
    ``exp(-mu |AB|^2)`` is below it for every primitive combination —
    the first (cheapest) level of the paper's screening cascade.
    """
    pairs: dict[tuple[int, int], ShellPair] = {}
    for i, sa in enumerate(shells):
        for j in range(i, len(shells)):
            sb = shells[j]
            if threshold > 0.0:
                ab2 = float(((sa.center - sb.center) ** 2).sum())
                mu_min = (sa.exps.min() * sb.exps.min()
                          / (sa.exps.min() + sb.exps.min()))
                if np.exp(-mu_min * ab2) < threshold:
                    continue
            pairs[(i, j)] = ShellPair(sa, sb, i, j)
    return pairs
