"""Even-tempered auxiliary basis generation for density fitting.

The RI factorization (see :mod:`repro.integrals.ri`) expands orbital
products ``|uv)`` in an auxiliary basis ``{|P)}``.  Rather than ship a
second basis library, the auxiliary set is *derived* from the orbital
basis per element, the way PySCF's ``aug_etb`` does: a product of two
primitives with exponents ``a_i``/``a_j`` is a Gaussian with exponent
``a_i + a_j`` and angular momentum up to ``l_i + l_j``, so for every
auxiliary angular momentum the generator spans the min..max exponent
sums of the contributing orbital-shell pairs with an even-tempered
geometric progression ``e_min * beta**k``.

Every auxiliary shell is a single normalized primitive — contraction
buys nothing for fitting functions and single primitives keep the
2-/3-index integral classes small and uniform.
"""

from __future__ import annotations

import numpy as np

from .basisset import BasisSet
from .shell import Shell

__all__ = ["build_aux_basis", "even_tempered_exponents"]

#: Default even-tempered progression ratio.  2.0 is on the dense/safe
#: side (PySCF's aug_etb default is 2.0 as well); the F15 benchmark and
#: the parity tests pin the resulting fitted error on the test systems.
DEFAULT_BETA = 2.0


def even_tempered_exponents(emin: float, emax: float,
                            beta: float = DEFAULT_BETA) -> np.ndarray:
    """Geometric exponent ladder covering ``[emin, emax]``.

    Returns ``emin * beta**k`` for ``k = 0..n`` with ``n`` chosen so the
    ladder reaches at least ``emax``.
    """
    if not (emin > 0.0 and emax >= emin):
        raise ValueError(f"need 0 < emin <= emax, got {emin!r}, {emax!r}")
    if beta <= 1.0:
        raise ValueError(f"beta must exceed 1, got {beta!r}")
    n = int(np.ceil(np.log(emax / emin) / np.log(beta))) + 1
    return emin * beta ** np.arange(n, dtype=np.float64)


def _element_plan(shells_by_l: dict[int, list[np.ndarray]],
                  beta: float) -> list[tuple[int, float]]:
    """Auxiliary ``(l, exponent)`` list for one element.

    ``shells_by_l`` maps orbital angular momentum to the primitive
    exponent arrays present on the element.
    """
    lmax = max(shells_by_l)
    plan: list[tuple[int, float]] = []
    # one angular layer beyond the product limit 2*lmax: the l = 2*lmax
    # products leave an angular fitting residual that the next-l shells
    # absorb — measured on the test systems this is the difference
    # between ~2e-4 and ~1.5e-5 Ha/atom fitted energy error
    for laux in range(2 * lmax + 2):
        # min/max over all primitive exponent sums of contributing
        # shell pairs (those whose product can reach laux; the extra
        # top layer reuses the highest-l product ranges)
        sums = []
        for l1, arrs1 in shells_by_l.items():
            for l2, arrs2 in shells_by_l.items():
                if l1 + l2 < min(laux, 2 * lmax):
                    continue
                e1 = np.concatenate(arrs1)
                e2 = np.concatenate(arrs2)
                s = e1[:, None] + e2[None, :]
                sums.append((float(s.min()), float(s.max())))
        if not sums:
            continue
        emin = min(lo for lo, _ in sums)
        emax = max(hi for _, hi in sums)
        for e in even_tempered_exponents(emin, emax, beta):
            plan.append((laux, float(e)))
    return plan


def build_aux_basis(basis: BasisSet, beta: float = DEFAULT_BETA) -> BasisSet:
    """Even-tempered auxiliary :class:`BasisSet` derived from ``basis``.

    One plan is computed per element (from that element's orbital
    primitive exponents) and instantiated on every atom of the element,
    so two atoms of the same species always carry identical fitting
    sets regardless of geometry.
    """
    mol = basis.molecule
    # orbital exponents per element, keyed by angular momentum
    per_element: dict[str, dict[int, list[np.ndarray]]] = {}
    for sh in basis.shells:
        sym = mol.symbols[sh.atom] if sh.atom >= 0 else "X"
        per_element.setdefault(sym, {}).setdefault(sh.l, []).append(sh.exps)
    plans = {sym: _element_plan(by_l, beta)
             for sym, by_l in per_element.items()}
    shells: list[Shell] = []
    for iatom, sym in enumerate(mol.symbols):
        for laux, exp in plans[sym]:
            shells.append(Shell(laux, np.array([exp]), np.array([1.0]),
                                mol.coords[iatom], atom=iatom))
    return BasisSet(mol, f"{basis.name}-autoaux", shells)
