"""Contracted Gaussian shells.

A *shell* is a set of contracted Cartesian Gaussians sharing a center,
an angular momentum ``l``, and a radial contraction.  Shells are the
screening/tasking granularity of the HFX scheme (exactly as in the
paper, where the ERI kernel operates on shell quartets).

Angular momentum convention: Cartesian components in lexicographic
order of ``(lx, ly, lz)`` with ``lx`` descending — e.g. for p:
``x, y, z``; for d: ``xx, xy, xz, yy, yz, zz``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.special import factorial2

__all__ = ["Shell", "cartesian_components", "ncart", "primitive_norm",
           "AM_LABELS"]

AM_LABELS = "spdfgh"


def ncart(l: int) -> int:
    """Number of Cartesian components of angular momentum ``l``."""
    return (l + 1) * (l + 2) // 2


def cartesian_components(l: int) -> list[tuple[int, int, int]]:
    """Cartesian exponent triples ``(lx, ly, lz)`` for angular momentum
    ``l``, in the package-wide canonical order."""
    comps = []
    for lx in range(l, -1, -1):
        for ly in range(l - lx, -1, -1):
            comps.append((lx, ly, l - lx - ly))
    return comps


def _df(n: int) -> float:
    """(2n-1)!! with the (-1)!! = 1 convention."""
    return float(factorial2(2 * n - 1)) if n > 0 else 1.0


def primitive_norm(alpha: float, lx: int, ly: int, lz: int) -> float:
    """Normalization constant of a primitive Cartesian Gaussian
    ``x^lx y^ly z^lz exp(-alpha r^2)``."""
    l = lx + ly + lz
    pref = (2.0 * alpha / np.pi) ** 0.75 * (4.0 * alpha) ** (l / 2.0)
    return pref / np.sqrt(_df(lx) * _df(ly) * _df(lz))


@dataclass
class Shell:
    """A contracted Cartesian Gaussian shell.

    Parameters
    ----------
    l:
        Angular momentum (0 = s, 1 = p, ...).
    exps:
        Primitive exponents, shape ``(nprim,)``.
    coefs:
        Raw contraction coefficients as tabulated (without primitive
        normalization), shape ``(nprim,)``.
    center:
        Cartesian center in Bohr.
    atom:
        Index of the parent atom in the molecule (-1 for free-floating).
    """

    l: int
    exps: np.ndarray
    coefs: np.ndarray
    center: np.ndarray
    atom: int = -1
    # per-component normalized contraction coefficients, shape (ncart, nprim)
    norm_coefs: np.ndarray = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        self.exps = np.asarray(self.exps, dtype=np.float64)
        self.coefs = np.asarray(self.coefs, dtype=np.float64)
        self.center = np.asarray(self.center, dtype=np.float64)
        if self.exps.shape != self.coefs.shape or self.exps.ndim != 1:
            raise ValueError("exps and coefs must be 1-D arrays of equal length")
        if self.l < 0:
            raise ValueError("angular momentum must be non-negative")
        self._normalize()

    # --- derived ------------------------------------------------------------

    @property
    def nprim(self) -> int:
        """Number of primitives in the contraction."""
        return len(self.exps)

    @property
    def nfunc(self) -> int:
        """Number of basis functions (Cartesian components)."""
        return ncart(self.l)

    @property
    def components(self) -> list[tuple[int, int, int]]:
        """Cartesian components in canonical order."""
        return cartesian_components(self.l)

    def _normalize(self) -> None:
        """Build per-component contraction coefficients that make each
        contracted function unit-normalized.

        For each component ``(lx,ly,lz)`` the contracted self-overlap is
        computed in closed form and folded into the coefficients, so the
        integral engine can treat coefficients as plain weights.
        """
        comps = self.components
        a = self.exps
        c = self.coefs
        out = np.empty((len(comps), self.nprim))
        for ic, (lx, ly, lz) in enumerate(comps):
            prim_n = np.array([primitive_norm(ai, lx, ly, lz) for ai in a])
            w = c * prim_n
            # contracted self-overlap: sum_ij w_i w_j S_ij with
            # S_ij = <g_i|g_j> of *unnormalized* primitives
            l = lx + ly + lz
            aa = a[:, None] + a[None, :]
            sij = (np.pi / aa) ** 1.5 / (2.0 * aa) ** l \
                * _df(lx) * _df(ly) * _df(lz)
            norm2 = float(w @ sij @ w)
            out[ic] = w / np.sqrt(norm2)
        self.norm_coefs = out

    # --- screening helpers ---------------------------------------------------

    def extent(self, threshold: float = 1e-10) -> float:
        """Radius (Bohr) beyond which every primitive has decayed below
        ``threshold`` relative to its peak — used for distance prescreening."""
        amin = float(self.exps.min())
        return float(np.sqrt(max(-np.log(threshold), 1.0) / amin))

    def __repr__(self) -> str:  # compact, for debugging task lists
        return (f"Shell(l={AM_LABELS[self.l]}, nprim={self.nprim}, "
                f"atom={self.atom})")
