"""Physical constants and unit conversions.

All internal quantities in this package are in Hartree atomic units
unless a function's docstring says otherwise:

* length   — Bohr radii (a0)
* energy   — Hartree (Ha)
* mass     — electron masses (m_e)
* time     — atomic time units (hbar / Ha)
* charge   — elementary charges (e)

The conversion factors here follow CODATA 2018 to the precision a
reproduction needs (the paper's results are never sensitive to the
tenth digit of a0).
"""

from __future__ import annotations

# --- length ---------------------------------------------------------------
BOHR_PER_ANGSTROM: float = 1.0 / 0.529177210903
ANGSTROM_PER_BOHR: float = 0.529177210903

# --- energy ---------------------------------------------------------------
EV_PER_HARTREE: float = 27.211386245988
KCALMOL_PER_HARTREE: float = 627.5094740631
KJMOL_PER_HARTREE: float = 2625.4996394799
KELVIN_PER_HARTREE: float = 315775.02480407  # Ha / k_B

# --- time -----------------------------------------------------------------
FEMTOSECOND_PER_AUT: float = 0.024188843265857  # 1 a.u. of time in fs
AUT_PER_FEMTOSECOND: float = 1.0 / FEMTOSECOND_PER_AUT

# --- mass -----------------------------------------------------------------
EMASS_PER_AMU: float = 1822.888486209  # electron masses per unified amu

# --- misc -----------------------------------------------------------------
BOLTZMANN_HARTREE_PER_K: float = 1.0 / KELVIN_PER_HARTREE


def angstrom_to_bohr(x: float) -> float:
    """Convert a length from Angstrom to Bohr."""
    return x * BOHR_PER_ANGSTROM


def bohr_to_angstrom(x: float) -> float:
    """Convert a length from Bohr to Angstrom."""
    return x * ANGSTROM_PER_BOHR


def hartree_to_ev(e: float) -> float:
    """Convert an energy from Hartree to electron-volt."""
    return e * EV_PER_HARTREE


def hartree_to_kcalmol(e: float) -> float:
    """Convert an energy from Hartree to kcal/mol."""
    return e * KCALMOL_PER_HARTREE


def fs_to_aut(t: float) -> float:
    """Convert a time from femtoseconds to atomic time units."""
    return t * AUT_PER_FEMTOSECOND


def aut_to_fs(t: float) -> float:
    """Convert a time from atomic time units to femtoseconds."""
    return t * FEMTOSECOND_PER_AUT
