"""F14 — screening-service smoke: a 6-job mini-campaign under fire.

The acceptance scenario for the high-throughput service layer: a mixed
SCF/MD campaign (the shape of the paper's solvent screening, shrunk to
container scale) is driven end-to-end through
:class:`repro.service.CampaignService` with

* one injected worker death (the job is retried, the campaign never
  notices),
* one duplicate spec (served from the content-addressed cache — zero
  extra Fock builds),
* MD preemption (trajectories run in time slices through the
  checkpoint store and must finish bit-identical to an unsliced run).

The quantity of interest is that all of this composes: 6/6 jobs
complete, ``service.cache_hits`` >= 1, the retried job records exactly
one extra attempt, and the preempted trajectory's final state matches
the straight-through facade run float for float.
"""

from __future__ import annotations

import time

import pytest

from repro import api
from repro.service import CampaignService, JobSpec

pytestmark = pytest.mark.service

MD_SPEC = JobSpec(kind="md", molecule="h2", steps=4, dt_fs=0.5,
                  temperature=300.0, seed=2, label="md/s2")

SPECS = [
    JobSpec(kind="scf", molecule="h2", label="scf/h2"),
    JobSpec(kind="scf", molecule="h2", basis="3-21g", label="victim"),
    JobSpec(kind="scf", molecule="water", label="scf/water"),
    JobSpec(kind="scf", molecule="h2", label="duplicate"),   # = job 0
    MD_SPEC,
    MD_SPEC.replace(seed=3, label="md/s3"),
]


def test_f14_service_campaign(tmp_path, report, monkeypatch):
    svc = CampaignService(tmp_path / "campaign", preempt_steps=2)
    jobs = [svc.submit(spec) for spec in SPECS]
    victim = jobs[1]
    monkeypatch.setenv("REPRO_SERVICE_FAULT", f"job={victim.id},times=1")

    t0 = time.perf_counter()
    rep = svc.run()
    wall = time.perf_counter() - t0
    counters = rep["counters"]

    # every job completed despite the death, the duplicate, and slicing
    assert rep["completed"] == len(SPECS) and rep["failed"] == 0

    # the duplicate was served from the cache, byte for byte
    assert counters["service.cache_hits"] >= 1
    records = {r["label"]: r for r in svc.results()}
    assert records["duplicate"]["cache_hit"] is True
    assert records["duplicate"]["result"] == records["scf/h2"]["result"]

    # the dead worker cost one retry, nothing else
    assert counters["service.jobs_retried"] == 1
    assert records["victim"]["attempts"] == 1
    assert records["victim"]["status"] == "done"

    # each 4-step trajectory was sliced at step 2 and resumed
    assert counters["service.jobs_preempted"] >= 2
    straight = api.run_md(MD_SPEC)
    sliced = records["md/s2"]["result"]
    assert sliced["final"]["coords"] == straight["final"]["coords"]
    assert sliced["final"]["velocities"] == straight["final"]["velocities"]

    # and the two MD seeds are two distinct cache entries
    assert records["md/s2"]["key"] != records["md/s3"]["key"]

    lines = [f"jobs                {rep['njobs']} submitted, "
             f"{rep['completed']} completed, {rep['failed']} failed",
             f"cache               {counters['service.cache_hits']} hit(s), "
             f"{counters['service.cache_misses']} miss(es)",
             f"faults              {counters['service.jobs_retried']} "
             "injected death(s) retried",
             f"preemptions         {counters['service.jobs_preempted']} "
             "MD slice yield(s), resumed bit-identically",
             f"t(campaign)         {wall:.2f} s  "
             f"({wall / rep['njobs']:.2f} s/job)"]
    per_job = [f"  job {r['job_id']}  {r['status']:<5} "
               f"attempts={r['attempts']} "
               f"{'cache ' if r['cache_hit'] else ''}{r['label']}"
               for r in svc.results()]
    report("\n".join(lines + ["jobs:"] + per_job))
