"""F3 — time-to-solution versus directly comparable approaches (>10x).

The abstract: "an improvement that can surpass a 10-fold decrease in
runtime with respect to directly comparable approaches."  At a fixed
matched partition we walk the ablation stack from the legacy baseline
to the full scheme, attributing the gain to its ingredients:

  1. legacy baseline (flat MPI, replicated, counter dispatch, scalar,
     1 thread/core)
  2. + cost-model static balancing (no counter, no replication)
  3. + 4-way SMT
  4. + QPX short-vector kernels  (= the full scheme)
"""

import numpy as np

from repro.analysis.ascii_fig import bar_chart
from repro.analysis.report import format_seconds, format_table
from repro.hfx import HFXScheme, ReplicatedDynamicBaseline
from repro.machine import NodeComputeModel, bgq_racks

from conftest import FLOP_SCALE

RACKS = 16  # a mid-size partition where the baseline still runs sanely


def test_f3_time_to_solution(report, benchmark, condensed_workload):
    cfg = bgq_racks(RACKS)
    wl = condensed_workload.split(
        condensed_workload.total_flops / (cfg.nranks * 24))

    # legacy configuration: replicated TZV2P-size matrices allow one
    # rank per node; its pthreads scale to ~4 of the 16 cores
    from repro.hfx import legacy_ranks_per_node
    from conftest import TZV2P_NBF_FACTOR

    nbf_model = int(condensed_workload.nbf * TZV2P_NBF_FACTOR)
    cfgb = bgq_racks(RACKS, ranks_per_node=legacy_ranks_per_node(nbf_model))
    t_legacy = ReplicatedDynamicBaseline(
        condensed_workload, cfgb, flop_scale=FLOP_SCALE,
        cores=4).simulate().makespan
    # static balanced, distributed data, but still 1 thread/core scalar
    node_scalar = NodeComputeModel(cfg, smt=1, simd=False)
    t_static = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE,
                         node=node_scalar).simulate().makespan
    node_smt = NodeComputeModel(cfg, smt=4, simd=False)
    t_smt = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE,
                      node=node_smt).simulate().makespan
    t_full = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE).simulate().makespan

    steps = [
        ("legacy baseline", t_legacy),
        ("+ static cost-model balance", t_static),
        ("+ 4-way SMT", t_smt),
        ("+ QPX vector kernels (full)", t_full),
    ]
    rows = [[name, format_seconds(t), f"{t_legacy / t:.2f}x"]
            for name, t in steps]
    table = format_table(rows,
                         headers=["configuration", "t(HFX build)",
                                  "speedup vs legacy"],
                         title=f"F3: time to solution at {RACKS} racks "
                               f"({cfg.total_threads} hardware threads)")
    fig = bar_chart({name: t for name, t in steps}, unit="s",
                    title="HFX build time by configuration")
    report(table + "\n\n" + fig)

    assert t_legacy / t_full > 10.0    # the paper's >10-fold claim
    # each ablation step helps
    times = [t for _, t in steps]
    assert all(b < a for a, b in zip(times, times[1:]))

    benchmark(lambda: HFXScheme(wl, cfg, flop_scale=FLOP_SCALE).simulate())
