"""F7 — the lithium/air application: solvent degradation chemistry.

The paper's scientific payload: PBE0-quality simulations show the
standard electrolyte (propylene carbonate) is chemically degraded by
the peroxide species formed on discharge, while alternative aprotic
solvents resist the attack.  This harness regenerates:

  a) peroxide-attack energy profiles per candidate solvent,
  b) the stability ranking (the "propose alternative solvents" result),
  c) the hybrid-functional effect (PBE vs PBE0 vs HF on the attack
     energetics — why exact exchange was worth 96 racks).

Real SCF energies on the model complexes (see DESIGN.md substitutions).
"""

import numpy as np

from repro.analysis.ascii_fig import line_plot
from repro.analysis.report import format_table
from repro.liair import screen_solvents

DISTANCES = np.array([4.0, 3.2, 2.6, 2.2, 2.0])


def test_f7_liair_solvent_screening(report, benchmark):
    result = screen_solvents(solvents=("PC", "DMSO", "ACN"),
                             methods=("hf", "pbe0"),
                             distances=DISTANCES,
                             grid_level=(24, 26))

    rows = [[r["solvent"], r["method"], r["well_kcal"], r["well_A"],
             r["attack_kcal"], "yes" if r["degrades"] else "no"]
            for r in result.table()]
    table = format_table(
        rows, headers=["solvent", "method", "well (kcal/mol)", "r_well (A)",
                       "contact dE", "attacked?"],
        title="F7: peroxide attack on candidate electrolytes "
              "(model complexes, STO-3G)")

    ranking = result.ranking("pbe0")
    rank_txt = "\nPBE0 stability ranking (most stable first): " + \
        "  >  ".join(f"{sv} ({score:+.1f})" for sv, score in ranking)
    shift_txt = "\nhybrid-functional effect on PC attack energy " \
        f"(hf -> pbe0): {result.functional_shift('PC', 'hf', 'pbe0'):+.1f} kcal/mol"

    series = {}
    for sv in ("PC", "DMSO", "ACN"):
        p = result.profiles[(sv, "pbe0")]
        series[sv] = (p.distances, p.energies * 627.5094740631)
    fig = line_plot(series, title="PBE0 approach profiles (kcal/mol vs far)",
                    xlabel="O...X distance (Angstrom)")
    report(table + rank_txt + shift_txt + "\n\n" + fig)

    # the paper's chemistry, as shapes:
    pc_hf = result.profiles[("PC", "hf")]
    dmso_hf = result.profiles[("DMSO", "hf")]
    # 1. PC is attacked: a chemical well on approach to the carbonate C
    #    (exact-exchange treatment, free of fractional-charge artifacts)
    assert pc_hf.well_depth_kcal < -3.0
    # 2. DMSO resists: its approach is uphill everywhere
    assert dmso_hf.well_depth_kcal > -1.0
    assert dmso_hf.attack_energy_kcal > 20.0
    # 3. the solvent ordering (DMSO more stable than PC) holds under
    #    *every* method — the paper's replacement recommendation
    for m in ("hf", "pbe0"):
        scores = dict(result.ranking(m))
        assert scores["DMSO"] > scores["PC"]
    # 4. the functional choice is material (the reason PBE0 MD needed
    #    the fast HFX scheme): the attack energetics shift by several
    #    kcal/mol between exchange treatments
    assert abs(result.functional_shift("PC", "hf", "pbe0")) > 3.0

    # timed kernel: one attack-complex SCF energy point
    from repro.liair.complexes import attack_complex
    from repro.liair.solvents import get_solvent
    from repro.scf.dft import run_rks

    cplx = attack_complex(get_solvent("ACN"), 3.0)
    benchmark(lambda: run_rks(cplx, functional="hf", max_iter=200))
