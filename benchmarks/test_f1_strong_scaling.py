"""F1 — strong scaling of the HFX scheme to 6,291,456 threads.

The paper's headline figure: time per HFX build and parallel efficiency
versus hardware-thread count, 1 to 96 BG/Q racks, with near-perfect
efficiency at the full machine.
"""

import numpy as np

from repro.analysis.ascii_fig import line_plot
from repro.analysis.report import format_seconds, format_si, format_table
from repro.hfx import HFXScheme
from repro.machine import bgq_racks, parallel_efficiency

from conftest import FLOP_SCALE

RACKS = (1, 2, 4, 8, 16, 32, 48, 64, 96)


def test_f1_strong_scaling(report, benchmark, condensed_workload):
    cfg_max = bgq_racks(RACKS[-1])
    wl = condensed_workload.split(
        condensed_workload.total_flops / (cfg_max.nranks * 24))

    timings = {}
    for racks in RACKS:
        cfg = bgq_racks(racks)
        bt = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE).simulate()
        timings[cfg.total_threads] = bt
    eff = parallel_efficiency(timings)

    rows = []
    for thr in sorted(timings):
        bt = timings[thr]
        rows.append([f"{thr / 65536:.0f}", format_si(thr),
                     format_seconds(bt.makespan),
                     f"{eff[thr]:.3f}",
                     f"{bt.compute_fraction:.3f}",
                     f"{bt.imbalance:.3f}"])
    table = format_table(
        rows, headers=["racks", "threads", "t(HFX build)", "efficiency",
                       "compute frac", "imbalance"],
        title=f"F1: strong scaling, {condensed_workload.label} "
              f"(TZV2P-model, eps=1e-8)")
    thr = np.array(sorted(timings))
    fig = line_plot(
        {"measured": (thr, np.array([timings[t].makespan for t in thr])),
         "ideal": (thr, timings[thr[0]].makespan * thr[0] / thr)},
        logx=True, logy=True, title="time per HFX build vs threads",
        xlabel="hardware threads")
    report(table + "\n\n" + fig)

    # the abstract's claim: near-perfect efficiency at 6,291,456 threads
    assert max(timings) == 6_291_456
    assert eff[6_291_456] > 0.85
    assert all(e > 0.85 for e in eff.values())

    # timed kernel: one full-machine plan+price
    cfg = bgq_racks(96)
    benchmark(lambda: HFXScheme(wl, cfg, flop_scale=FLOP_SCALE).simulate())
