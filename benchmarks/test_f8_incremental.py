"""F8 — incremental exchange builds across SCF/MD steps.

The scheme is "specifically tailored for ... molecular dynamics": with
the previous density seeding each build, the Cauchy-Schwarz screen
absorbs |dD| and most quartets drop out as the SCF converges.  Real
quartet counts per iteration on a real molecule, plus the modeled
savings on the condensed-phase workload.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.chem import builders
from repro.hfx import IncrementalExchange, incremental_survival
from repro.scf import RHF
from repro.scf.guess import core_guess


def test_f8_incremental_builds(report, benchmark, condensed_workload):
    # (a) real molecule: density sequence approaching convergence
    mol = builders.water_dimer()
    res = RHF(mol, conv_tol=1e-10).run()
    D0, _, _ = core_guess(res.hcore, res.S, mol.nelectron // 2)
    dD = D0 - res.D
    inc = IncrementalExchange(res.basis, eps=1e-8, rebuild_every=100)
    rows = []
    for k in range(9):
        D = res.D + dD * (0.1 ** k)
        inc.update(D)
        delta = float(np.abs(dD).max() * 0.1 ** k)
        rows.append([k, f"{delta:.1e}", inc.last_quartets,
                     f"{inc.last_quartets / inc.total_quartets_full * inc.builds:.3f}"])
    full = rows[0][2]
    table_a = format_table(
        rows, headers=["iteration", "|dD| scale", "quartets computed",
                       "fraction"],
        title=f"F8a: incremental exchange on {mol.name} "
              f"(eps=1e-8, full build = {full} quartets)")

    # (b) condensed-phase model: surviving unique quartets vs |dD|
    q_pairs = np.sort(np.asarray(
        [np.exp(lnq0) for (lnq0, _) in _model_q(condensed_workload)]))
    rows_b = []
    for delta in (1.0, 1e-2, 1e-4, 1e-6):
        surv, tot = incremental_survival(q_pairs, eps=1e-8, delta=delta)
        rows_b.append([f"{delta:.0e}", surv, f"{surv / tot:.4f}"])
    table_b = format_table(
        rows_b, headers=["|dD|", "surviving quartets", "fraction"],
        title="F8b: modeled incremental survival, condensed phase "
              "(class-level)")
    report(table_a + "\n\n" + table_b +
           f"\n\ncumulative savings on the real sequence: "
           f"{inc.savings * 100:.1f}% of quartets skipped")

    # shape: late iterations compute a small fraction of the full build
    assert rows[-1][2] < full / 2
    assert inc.savings > 0.2
    # model: survival monotone in |dD|
    survs = [r[1] for r in rows_b]
    assert all(a >= b for a, b in zip(survs, survs[1:]))

    benchmark(lambda: incremental_survival(q_pairs, 1e-8, 1e-4))


def _model_q(wl):
    """Representative pair-bound classes from the workload's Schwarz
    model (keeps F8b independent of the full pair list)."""
    from repro.basis import build_basis
    from repro.chem import builders as b
    from repro.hfx.workload import _cached_model

    shells = build_basis(b.water()).shells
    model = _cached_model("sto-3g", shells)
    return list(model.params.values())
