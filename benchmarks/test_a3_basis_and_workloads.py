"""A3 — basis-set and workload-composition ablations.

Two DESIGN.md ablations on the screening statistics the whole scheme
feeds on:

  a) basis set: minimal (STO-3G) vs split-valence (SV/3-21G class) on
     the same geometry — more diffuse valence functions survive the
     screen longer, growing the task list;
  b) workload composition: liquid water vs the PC electrolyte box at
     matched atom counts — heavier molecules mean richer shell mixes
     and a heavier pair-cost tail for the balancer.
"""

import numpy as np

from repro.analysis.report import format_si, format_table
from repro.chem import builders
from repro.hfx import synthetic_tasklist, partition_tasks
from repro.scf import run_rhf


def test_a3_basis_and_workloads(report, benchmark):
    # a) basis ablation on a real cluster
    mol = builders.water_cluster(8, seed=0)
    rows_a = []
    wls = {}
    for basis in ("sto-3g", "sv"):
        wl = synthetic_tasklist(mol, eps=1e-8, basis_name=basis,
                                label=f"{mol.name}/{basis}")
        wls[basis] = wl
        rows_a.append([basis, wl.nbf, wl.ntasks,
                       format_si(float(wl.total_quartets)),
                       f"{wl.total_flops / 1e9:.3g}"])
    table_a = format_table(
        rows_a, headers=["basis", "nbf", "pair tasks", "quartets",
                         "GFlop"],
        title=f"A3a: basis-set ablation on {mol.name} (eps = 1e-8)")

    # real SCF accuracy point: SV recovers more correlation-free energy
    e_min = run_rhf(builders.water(), basis="sto-3g").energy
    e_sv = run_rhf(builders.water(), basis="sv").energy
    acc = (f"\nreal SCF check (single water): E(STO-3G) = {e_min:.5f}, "
           f"E(SV) = {e_sv:.5f} Ha (variational: SV lower)")

    # b) workload composition at matched atom counts
    rows_b = []
    for label, builder in (
            ("(H2O)64", lambda: builders.water_box(64, seed=0)[0]),
            ("PCx16+Li2O2", lambda: builders.electrolyte_box(
                "PC", 16, seed=1)[0])):
        m = builder()
        wl = synthetic_tasklist(m, eps=1e-8, label=label)
        part = partition_tasks(wl.flops, 1024, "serpentine")
        rows_b.append([label, m.natom, wl.ntasks,
                       f"{wl.flops.max() / wl.total_flops:.2e}",
                       f"{part.imbalance:.4f}"])
    table_b = format_table(
        rows_b, headers=["system", "atoms", "pair tasks",
                         "max task share", "imbalance @1k ranks"],
        title="A3b: workload composition (water vs electrolyte)")
    report(table_a + acc + "\n\n" + table_b)

    # shapes: the bigger basis grows every axis of the workload
    assert wls["sv"].nbf > wls["sto-3g"].nbf
    assert wls["sv"].total_quartets > wls["sto-3g"].total_quartets
    assert e_sv < e_min  # variational improvement

    benchmark(lambda: synthetic_tasklist(mol, eps=1e-8,
                                         basis_name="sto-3g"))
