"""F15 — density fitting: direct vs RI full-SCF wall-clock crossover.

The tentpole claim of the RI work, measured end to end: the same
converged RHF calculation run with the quartet-direct J/K engine and
with the density-fitted engine (``ExecutionConfig(jk="ri")``), on a
growing water-cluster series plus one electrolyte fragment.  Per
system the report records both wall-clocks, the speedup, the fitted
J/K errors at the converged density, and the fitted energy error per
atom — the accuracy half of the claim next to the speed half.

Where the advantage comes from: the direct path pays the screened
quartet walk on *every* SCF iteration, while the RI path assembles the
3-index ``B`` tensor once per geometry and reduces every later Fock
build to dense GEMMs; the ``b_builds``/``b_reuses`` counters in the
report make the amortization explicit.

``REPRO_BENCH_RI_WATERS`` sets the largest cluster (default 3); the
acceptance bar — >= 2x SCF wall-clock on the largest system with
|dE| <= 5e-5 Ha/atom — is asserted.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.basis import build_basis
from repro.chem import builders
from repro.runtime import ExecutionConfig
from repro.scf import RHF, RIJKBuilder
from repro.scf.fock import coulomb_from_tensor, exchange_from_tensor

N_WATERS = int(os.environ.get("REPRO_BENCH_RI_WATERS", "3"))
TARGET_SPEEDUP = 2.0
DE_PER_ATOM = 5e-5

pytestmark = pytest.mark.ri


def _systems():
    for n in range(1, N_WATERS + 1):
        yield f"(H2O){n}", builders.water_cluster(n, seed=0)
    yield "Li2O2", builders.li2o2()


def _timed_scf(mol, cfg):
    scf = RHF(mol, mode="direct", config=cfg)
    t0 = time.perf_counter()
    res = scf.run()
    dt = time.perf_counter() - t0
    assert res.converged
    return dt, res, scf


def test_f15_ri_crossover(report):
    rows = []
    final = None
    for name, mol in _systems():
        t_d, r_d, _ = _timed_scf(mol, ExecutionConfig())
        t_r, r_r, scf_r = _timed_scf(mol, ExecutionConfig(jk="ri"))
        b = scf_r._direct                       # the RIJKBuilder
        de_atom = abs(r_r.energy - r_d.energy) / mol.natom
        # fitted J/K error at the converged reference density
        basis = build_basis(mol)
        from repro.integrals import eri_tensor

        eri = eri_tensor(basis)
        J_fit, K_fit = RIJKBuilder(basis).build(r_d.D)
        dj = float(np.abs(J_fit - coulomb_from_tensor(eri, r_d.D)).max())
        dk = float(np.abs(K_fit - exchange_from_tensor(eri, r_d.D)).max())
        speedup = t_d / t_r
        rows.append(
            f"{name:<8s} nbf={basis.nbf:<4d} naux={b.aux.nbf:<5d} "
            f"t(direct)={t_d:7.2f} s  t(ri)={t_r:7.2f} s  "
            f"speedup={speedup:5.2f}x  B {b.b_builds}+{b.b_reuses}r  "
            f"|dE|/atom={de_atom:.2e}  max|dJ|={dj:.2e}  "
            f"max|dK|={dk:.2e}")
        assert de_atom <= DE_PER_ATOM
        assert b.b_builds == 1
        assert b.b_reuses == r_r.fock_builds - 1
        if name.startswith("(H2O)"):
            final = (name, speedup, de_atom)
    name, speedup, de_atom = final
    report("\n".join(rows) + "\n"
           f"\nlargest cluster   {name}\n"
           f"SCF speedup       {speedup:.2f}x  (target >= "
           f"{TARGET_SPEEDUP:.1f}x)\n"
           f"|dE|/atom         {de_atom:.2e}  (bound {DE_PER_ATOM:.0e})")
    assert speedup >= TARGET_SPEEDUP
