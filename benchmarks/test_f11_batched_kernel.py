"""F11 — batched L-class kernel: per-quartet vs. batched build wall-clock.

The tentpole claim of the batching work, measured: the same screened
quartet workload (direct J/K build on a real water cluster) executed
with the per-quartet reference kernel and with the batched L-class
kernel, J/K verified to 1e-12, speedup recorded per system size.

This is the Python analogue of the paper's QPX measurement — the
integral kernel's setup costs (Hermite recursion dispatch, GEMM
planning, per-quartet scatter einsums) amortized over whole
angular-momentum classes instead of paid per quartet.

``REPRO_BENCH_KERNEL_WATERS`` sets the largest cluster (default 4); the
sweep runs 1..N so the report shows how the advantage grows with the
surviving-quartet count.  The paper-level acceptance bar — >= 3x on the
largest system — is asserted.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.basis import build_basis
from repro.chem import builders
from repro.runtime import ExecutionConfig
from repro.scf import DirectJKBuilder

N_WATERS = int(os.environ.get("REPRO_BENCH_KERNEL_WATERS", "4"))
EPS = 1e-10
TOL = 1e-12
TARGET_SPEEDUP = 3.0

pytestmark = pytest.mark.kernel


def _build_state(n):
    mol = builders.water_cluster(n, seed=0)
    basis = build_basis(mol)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((basis.nbf, basis.nbf)) * 0.1
    D = A + A.T + np.eye(basis.nbf)
    return basis, D


def _time_build(basis, D, kernel):
    b = DirectJKBuilder(basis, eps=EPS, config=ExecutionConfig(kernel=kernel))
    t0 = time.perf_counter()
    J, K = b.build(D)
    return time.perf_counter() - t0, J, K, b.quartets_computed


def test_f11_batched_kernel(report):
    rows = []
    final = None
    for n in range(1, N_WATERS + 1):
        basis, D = _build_state(n)
        # warm the per-basis caches (shell pairs are rebuilt per builder,
        # but Schwarz bounds and shell slices are shared) so both kernels
        # start from identical state
        t_q, J_q, K_q, nq_q = _time_build(basis, D, "quartet")
        t_b, J_b, K_b, nq_b = _time_build(basis, D, "batched")
        err = max(float(np.abs(J_b - J_q).max()),
                  float(np.abs(K_b - K_q).max()))
        speedup = t_q / t_b
        rows.append(f"(H2O){n:<3d} nbf={basis.nbf:<4d} "
                    f"quartets={nq_q:<7d} t(quartet)={t_q:7.3f} s  "
                    f"t(batched)={t_b:7.3f} s  speedup={speedup:5.2f}x  "
                    f"max|dJK|={err:.2e}")
        assert nq_b == nq_q
        assert err <= TOL
        final = (speedup, err, nq_q)
    speedup, err, nq = final
    report("\n".join(rows) + "\n"
           f"\nlargest system    (H2O){N_WATERS}  quartets={nq}\n"
           f"final speedup     {speedup:.2f}x  (target >= "
           f"{TARGET_SPEEDUP:.1f}x)\n"
           f"max|dJK|          {err:.2e}  (tolerance {TOL:.0e})")
    assert speedup >= TARGET_SPEEDUP
