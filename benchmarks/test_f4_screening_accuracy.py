"""F4 — controllable accuracy of the HFX evaluation.

The abstract: "achieve the necessary accuracy for the evaluation of the
HFX in a highly controllable manner."  One threshold (the
Cauchy-Schwarz eps) trades integrals computed against exchange-energy
error; this harness sweeps it on a real system with real integrals and
reports error alongside surviving work.
"""

import numpy as np

from repro.analysis.ascii_fig import line_plot
from repro.analysis.report import format_table
from repro.chem import builders
from repro.scf import DirectJKBuilder, run_rhf

EPS_SWEEP = (1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-8, 1e-10)


def test_f4_screening_accuracy(report, benchmark):
    mol = builders.water_cluster(3, seed=2)
    res = run_rhf(mol)
    ref_builder = DirectJKBuilder(res.basis, eps=1e-14)
    _, K_ref = ref_builder.build(res.D, want_j=False)
    e_ref = -0.25 * float(np.einsum("pq,pq->", K_ref, res.D))
    total_quartets = ref_builder.quartets_total

    rows, errs, fracs = [], [], []
    for eps in EPS_SWEEP:
        b = DirectJKBuilder(res.basis, eps=eps)
        _, K = b.build(res.D, want_j=False)
        e = -0.25 * float(np.einsum("pq,pq->", K, res.D))
        err = abs(e - e_ref)
        frac = b.quartets_computed / total_quartets
        rows.append([f"{eps:.0e}", b.quartets_computed,
                     f"{frac:.4f}", f"{err:.3e}"])
        errs.append(max(err, 1e-16))
        fracs.append(frac)
    table = format_table(
        rows, headers=["eps", "quartets", "fraction of work",
                       "|dE_x| (Ha)"],
        title=f"F4: screening threshold sweep — {mol.name}, "
              f"E_x(ref) = {e_ref:.8f} Ha, {total_quartets} quartets")
    eps_arr = np.array(EPS_SWEEP)
    fig = line_plot({"error": (eps_arr, np.array(errs)),
                     "work": (eps_arr, np.array(fracs))},
                    logx=True, logy=True,
                    title="exchange error and work fraction vs eps",
                    xlabel="screening threshold eps")
    report(table + "\n\n" + fig)

    # controllability: the error is bounded by the threshold (times a
    # modest workload prefactor; the signed error itself can dip lower
    # through fortuitous cancellation) and work grows monotonically
    for eps, err in zip(EPS_SWEEP, errs):
        assert err < eps * total_quartets * 0.05, (eps, err)
    assert all(a <= b + 1e-12 for a, b in zip(fracs, fracs[1:]))
    # tight thresholds reach integral-exact territory
    assert errs[-1] < 1e-9
    # loose thresholds genuinely cut work
    assert fracs[0] < 0.6

    benchmark(lambda: DirectJKBuilder(res.basis, eps=1e-6).build(
        res.D, want_j=False))
