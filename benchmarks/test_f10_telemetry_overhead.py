"""F10 — telemetry overhead: the disabled fast path must be (nearly) free.

The telemetry subsystem instruments the hottest loops in the repo (the
screened J/K quartet builds), so its acceptance bar is a measurement:
with telemetry *disabled* (the default ``ExecutionConfig``), the
instrumented builder must stay within 5% of a bare hand-rolled loop
with no tracer plumbing at all.  The *enabled* cost is recorded for
context (it is allowed to be visible — tracing is opt-in).

Timings are min-of-N over repeated builds on the F9-class real-integral
system (``REPRO_BENCH_POOL_WATERS`` resizes it); the minimum is the
standard estimator for "the loop itself" under scheduler noise.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.basis import build_basis
from repro.chem import builders
from repro.runtime import ExecutionConfig, Tracer
from repro.scf import DirectJKBuilder
from repro.scf.fock import reflect_triangle, scatter_coulomb, scatter_exchange

N_WATERS = int(os.environ.get("REPRO_BENCH_POOL_WATERS", "4"))
EPS = 1e-10
REPEATS = 5
MAX_DISABLED_OVERHEAD = 0.05

pytestmark = pytest.mark.telemetry


@pytest.fixture(scope="module")
def cluster_state():
    mol = builders.water_cluster(N_WATERS, seed=0)
    basis = build_basis(mol)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((basis.nbf, basis.nbf)) * 0.1
    D = A + A.T + np.eye(basis.nbf)
    return basis, D


def _bare_build(builder: DirectJKBuilder, D: np.ndarray):
    """The same screened J/K build with zero telemetry plumbing —
    the reference the disabled path is charged against."""
    basis = builder.basis
    nbf = basis.nbf
    J = np.zeros((nbf, nbf))
    K = np.zeros((nbf, nbf))
    dmax = float(np.abs(D).max()) if D.size else 0.0
    for (i, j, kets) in builder._screened_pairs(dmax):
        for (k, l) in kets:
            k, l = int(k), int(l)
            block = builder.engine.quartet(i, j, k, l)
            scatter_coulomb(basis, J, block, D, (i, j, k, l))
            scatter_exchange(basis, K, block, D, (i, j, k, l))
    return reflect_triangle(J), K


def _min_of(n: int, fn) -> tuple[float, object]:
    best, out = float("inf"), None
    for _ in range(n):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def test_f10_telemetry_overhead(cluster_state, report, results_dir):
    basis, D = cluster_state

    bare_builder = DirectJKBuilder(basis, eps=EPS)
    t_bare, (J_b, K_b) = _min_of(REPEATS, lambda: _bare_build(bare_builder, D))

    disabled = DirectJKBuilder(basis, eps=EPS)  # default config: NullTracer
    t_off, (J_o, K_o) = _min_of(REPEATS, lambda: disabled.build(D))

    tracer = Tracer("f10")
    traced = DirectJKBuilder(basis, eps=EPS,
                             config=ExecutionConfig(tracer=tracer))
    t_on, (J_t, K_t) = _min_of(REPEATS, lambda: traced.build(D))

    # telemetry is observation-only on every path
    np.testing.assert_array_equal(J_o, J_b)
    np.testing.assert_array_equal(K_o, K_b)
    np.testing.assert_array_equal(J_t, J_b)
    np.testing.assert_array_equal(K_t, K_b)

    overhead_off = t_off / t_bare - 1.0
    overhead_on = t_on / t_bare - 1.0
    nspans = len(tracer.spans)
    report(
        f"system              (H2O){N_WATERS}  nbf={basis.nbf}  "
        f"quartets={disabled.quartets_computed}\n"
        f"timing              min of {REPEATS} builds each\n"
        f"t(bare loop)        {t_bare * 1e3:.2f} ms   (no tracer plumbing)\n"
        f"t(telemetry off)    {t_off * 1e3:.2f} ms   "
        f"({overhead_off:+.2%} vs bare)\n"
        f"t(telemetry on)     {t_on * 1e3:.2f} ms   "
        f"({overhead_on:+.2%} vs bare, {nspans} spans/"
        f"{REPEATS} builds)\n"
        f"acceptance          disabled overhead < "
        f"{MAX_DISABLED_OVERHEAD:.0%}"
    )
    assert overhead_off < MAX_DISABLED_OVERHEAD
