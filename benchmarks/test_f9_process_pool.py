"""F9 — process-pool executor: serial vs. parallel HFX build wall-clock.

The paper's claim is that the HFX build scales to millions of threads;
every earlier figure *prices* that on the machine model.  This
benchmark is the first measurement: the same screened quartet workload
executed serially and on the persistent worker pool, K matrices
verified to 1e-10, speedup recorded.

The fixture is a real water cluster (largest real-integral system in
the suite; ``REPRO_BENCH_POOL_WATERS`` resizes it).  On a single-core
machine the pool can only demonstrate correctness — the speedup
assertion arms itself only when at least ``nworkers`` cores are usable.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.basis import build_basis
from repro.chem import builders
from repro.hfx import distributed_exchange
from repro.runtime import ExecutionConfig
from repro.runtime.pool import ExchangeWorkerPool, default_nworkers

N_WATERS = int(os.environ.get("REPRO_BENCH_POOL_WATERS", "4"))
NRANKS = 4
NWORKERS = 4
EPS = 1e-10

pytestmark = pytest.mark.pool


@pytest.fixture(scope="module")
def cluster_state():
    mol = builders.water_cluster(N_WATERS, seed=0)
    basis = build_basis(mol)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((basis.nbf, basis.nbf)) * 0.1
    D = A + A.T + np.eye(basis.nbf)
    return basis, D


def test_f9_process_pool(cluster_state, report):
    basis, D = cluster_state

    t0 = time.perf_counter()
    K_serial, _, tasks, _ = distributed_exchange(
        basis, D, nranks=NRANKS, eps=EPS)
    t_serial = time.perf_counter() - t0

    # pool spawn priced separately from the steady-state build: in an
    # SCF/MD the workers are forked once and reused every iteration
    t0 = time.perf_counter()
    pool = ExchangeWorkerPool(basis, nworkers=NWORKERS)
    t_spawn = time.perf_counter() - t0
    try:
        t0 = time.perf_counter()
        K_pool, _, _, _ = distributed_exchange(
            basis, D, nranks=NRANKS, eps=EPS, pool=pool,
            config=ExecutionConfig(executor="process"))
        t_pool = time.perf_counter() - t0
    finally:
        pool.close()

    err = float(np.abs(K_pool - K_serial).max())
    speedup = t_serial / t_pool
    cores = default_nworkers()
    report(
        f"system            (H2O){N_WATERS}  nbf={basis.nbf}  "
        f"quartets={tasks.total_quartets}\n"
        f"executors         serial vs process ({NWORKERS} workers, "
        f"{NRANKS} ranks, {cores} usable cores)\n"
        f"t(serial build)   {t_serial:.3f} s\n"
        f"t(pool build)     {t_pool:.3f} s   (+{t_spawn:.3f} s one-time "
        "spawn, amortized over SCF/MD)\n"
        f"speedup           {speedup:.2f}x\n"
        f"max|dK|           {err:.2e}"
    )
    assert err <= 1e-10
    if cores >= NWORKERS:
        assert speedup >= 1.8
