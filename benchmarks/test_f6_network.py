"""F6 — the role of the highly dimensional interconnect.

The abstract credits "highly dimensional interconnection networks".
Two ablations quantify that:

  a) the same node count wired as a 1-D ring, 2-D/3-D mesh, and the
     real 5-D torus: collective cost and its share of an HFX build;
  b) task-to-node mapping (ABCDET vs blocked vs random): dilation and
     the resulting software-collective penalty.
"""

import numpy as np

from repro.analysis.report import format_seconds, format_table
from repro.hfx import HFXScheme, scheme_comm_plan
from repro.machine import (CollectiveModel, Torus, abcdet_mapping,
                           bgq_racks, blocked_mapping, dilation,
                           random_mapping)

from conftest import FLOP_SCALE

# 4096 nodes (4 racks) factored into tori of decreasing dimensionality
SHAPES = {
    "5-D (8x8x8x4x2)": (8, 8, 8, 4, 2),
    "3-D (16x16x16)": (16, 16, 16),
    "2-D (64x64)": (64, 64),
    "1-D ring (4096)": (4096,),
}


def test_f6_network(report, benchmark, condensed_workload):
    racks = 4
    cfg = bgq_racks(racks)
    wl = condensed_workload.split(
        condensed_workload.total_flops / (cfg.nranks * 16))
    bt = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE).simulate()
    payload = scheme_comm_plan(wl, cfg).allreduce_bytes

    rows = []
    for label, dims in SHAPES.items():
        torus = Torus(dims)
        coll = CollectiveModel(cfg, torus, "torus_tree")
        t_tree = coll.allreduce(payload)
        ring = CollectiveModel(cfg, torus, "ring")
        t_ring = ring.allreduce(payload)
        rows.append([label, torus.diameter,
                     f"{torus.average_distance():.1f}",
                     format_seconds(t_tree), format_seconds(t_ring)])
    table1 = format_table(
        rows, headers=["topology", "diameter", "avg hops",
                       "hw-tree allreduce", "sw-ring allreduce"],
        title=f"F6a: allreduce of the exchange payload "
              f"({payload} B) on {cfg.nodes} nodes")

    # mapping ablation on the real 5-D torus
    torus = Torus(cfg.torus_dims)
    map_rows = []
    for mapping in (abcdet_mapping(torus), blocked_mapping(torus, 64),
                    random_mapping(torus, seed=3)):
        d = dilation(mapping)
        coll = CollectiveModel(cfg, torus, "ring", dilation=d)
        t = coll.allreduce(payload)
        map_rows.append([mapping.name, f"{d:.2f}", format_seconds(t)])
    table2 = format_table(
        map_rows, headers=["mapping", "dilation", "sw-ring allreduce"],
        title="F6b: task-to-node mapping on the 5-D torus")

    summary = (f"\nHFX build at {racks} racks: compute "
               f"{format_seconds(bt.compute_time)}, collectives "
               f"{format_seconds(bt.comm_time)} "
               f"({100 * (1 - bt.compute_fraction):.2f}% of makespan)")
    report(table1 + "\n\n" + table2 + summary)

    # 5-D torus: diameter an order of magnitude below the ring's
    d5 = Torus(SHAPES["5-D (8x8x8x4x2)"]).diameter
    d1 = Torus(SHAPES["1-D ring (4096)"]).diameter
    assert d5 * 50 < d1
    # collectives are a negligible share of the build on the 5-D torus
    assert bt.comm_time < 0.02 * bt.makespan
    # locality-aware mapping beats random
    assert float(map_rows[0][1]) < float(map_rows[2][1])

    coll = CollectiveModel(cfg, torus, "torus_tree")
    benchmark(lambda: coll.allreduce(payload))
