"""T1 — benchmark-system inventory (the paper's systems table).

Regenerates, for each benchmark system, the rows a systems table
reports: atoms, basis functions, shells, significant screened pairs,
surviving quartets, and estimated work — the quantities that determine
how far each system can strong-scale.
"""

import numpy as np

from repro.analysis.report import format_si, format_table
from repro.chem import builders
from repro.hfx import electrolyte_workload, water_box_workload


def _row(label, mol, wl):
    return [label, mol.natom, wl.nbf, wl.nocc, wl.ntasks,
            format_si(float(wl.total_quartets)),
            f"{wl.total_flops / 1e9:.3g}"]


def test_t1_system_inventory(report, benchmark):
    rows = []
    for n in (32, 64, 128, 256):
        mol, _ = builders.water_box(n, seed=0)
        wl = water_box_workload(n, eps=1e-8, seed=0)
        rows.append(_row(f"(H2O){n}", mol, wl))
    mol, _ = builders.electrolyte_box("PC", 16, seed=1)
    wl = electrolyte_workload("PC", 16, eps=1e-8, seed=1)
    rows.append(_row("PCx16+Li2O2", mol, wl))

    table = format_table(
        rows,
        headers=["system", "atoms", "nbf", "nocc", "pair tasks",
                 "quartets", "GFlop (STO-3G)"],
        title="T1: benchmark systems (eps = 1e-8)")
    report(table)

    # shape checks: work grows superlinearly but far below N^4
    q = [float(r[5][:-1]) if r[5][-1] in "kMGT" else float(r[5])
         for r in rows[:4]]
    assert rows[1][4] > rows[0][4]

    # the timed kernel: workload generation for the smallest system
    benchmark(lambda: water_box_workload(32, eps=1e-8, seed=3))
