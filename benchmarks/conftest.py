"""Shared fixtures for the benchmark harness.

Workloads are cached on disk (benchmarks/.cache) because the synthetic
condensed-phase generator is itself a few seconds of work and every
figure reuses the same system.
"""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import pytest

from repro.hfx import water_box_workload

CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"

# Workload size knob: the paper-scale system (512 waters) takes ~10 s to
# generate; REPRO_BENCH_WATERS can shrink it for quick runs.
N_WATERS = int(os.environ.get("REPRO_BENCH_WATERS", "512"))
EPS = 1e-8
# Maps the STO-3G cost statistics to the paper's TZV2P-class basis
# (see DESIGN.md, substitutions).
FLOP_SCALE = 50.0
# TZV2P carries ~58 basis functions per water vs STO-3G's 7; the
# replicated-data baseline's memory wall is computed at this model size.
TZV2P_NBF_FACTOR = 58.0 / 7.0


def _cached(name, builder):
    CACHE_DIR.mkdir(exist_ok=True)
    path = CACHE_DIR / f"{name}.pkl"
    if path.exists():
        with open(path, "rb") as fh:
            return pickle.load(fh)
    obj = builder()
    with open(path, "wb") as fh:
        pickle.dump(obj, fh)
    return obj


@pytest.fixture(scope="session")
def condensed_workload():
    """The paper-scale condensed-phase workload (liquid water box)."""
    return _cached(f"waterbox_{N_WATERS}_{EPS:g}",
                   lambda: water_box_workload(N_WATERS, eps=EPS, seed=0))


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def report(results_dir, capsys, request):
    """Print a report block to the live terminal and persist it."""

    def _report(text: str):
        name = request.node.name
        with capsys.disabled():
            print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _report
