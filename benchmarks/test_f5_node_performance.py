"""F5 — exploiting extreme threading and short vectors inside a node.

The abstract credits "extreme threading [and] short vector
instructions".  This harness reproduces the per-node ablations: core
sweep, SMT sweep, SIMD on/off, and loop-scheduling policy, on one
rank's share of the condensed-phase workload.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.machine import NodeComputeModel, bgq_racks

from conftest import FLOP_SCALE


def _rank_share(wl, nranks=1024):
    """One rank's share (total flops, quartet count) under the
    production partition — threads work at *quartet* granularity."""
    from repro.hfx import partition_tasks

    part = partition_tasks(wl.flops, nranks, "serpentine")
    rank0 = part.rank_of_task == 0
    flops = float(wl.flops[rank0].sum()) * FLOP_SCALE
    nq = int(wl.nquartets[rank0].sum())
    return flops, nq


def test_f5_node_performance(report, benchmark, condensed_workload):
    cfg = bgq_racks(1)
    flops, nq = _rank_share(condensed_workload)

    rows = []
    base_time = None
    # cores sweep at SMT1, scalar
    for cores in (1, 2, 4, 8, 16):
        node = NodeComputeModel(cfg, cores=cores, smt=1, simd=False, chunk=8)
        t = node.compute_time_uniform(flops, nq).makespan
        if base_time is None:
            base_time = t
        rows.append([f"{cores} cores / SMT1 / scalar", f"{t:.3f}",
                     f"{base_time / t:.2f}x"])
    # SMT sweep at 16 cores, scalar
    for smt in (2, 4):
        node = NodeComputeModel(cfg, cores=16, smt=smt, simd=False, chunk=8)
        t = node.compute_time_uniform(flops, nq).makespan
        rows.append([f"16 cores / SMT{smt} / scalar", f"{t:.3f}",
                     f"{base_time / t:.2f}x"])
    # QPX on at the full configuration
    node = NodeComputeModel(cfg, cores=16, smt=4, simd=True, chunk=8)
    t_full = node.compute_time_uniform(flops, nq).makespan
    rows.append(["16 cores / SMT4 / QPX", f"{t_full:.3f}",
                 f"{base_time / t_full:.2f}x"])

    # scheduling policies at full threading over the rank's pair-task
    # batch (per-task costs; quartet chunking inside)
    from repro.hfx import partition_tasks

    part = partition_tasks(condensed_workload.flops, 1024, "serpentine")
    task_costs = condensed_workload.flops[part.rank_of_task == 0] * FLOP_SCALE
    sched_rows = []
    for policy in ("static", "static_block", "dynamic", "guided"):
        node = NodeComputeModel(cfg, schedule=policy, chunk=1)
        r = node.compute_time(task_costs)
        sched_rows.append([policy, f"{r.makespan:.3f}",
                           f"{r.efficiency:.3f}", f"{r.imbalance:.3f}"])

    table1 = format_table(rows, headers=["configuration", "t (s)",
                                         "speedup vs 1 core"],
                          title="F5a: in-node threading/SIMD ablation "
                                "(one rank's HFX share)")
    table2 = format_table(sched_rows,
                          headers=["schedule", "t (s)", "thread eff",
                                   "imbalance"],
                          title="F5b: quartet-loop scheduling policy "
                                "(64 hardware threads)")
    report(table1 + "\n\n" + table2)

    speedup_full = base_time / t_full
    # the paper-range expectations: 16 cores x ~1.8 SMT x ~2.9 QPX
    assert 50 < speedup_full < 120
    # dynamic/guided beat cost-oblivious static on heavy-tailed batches
    t_static = float(sched_rows[0][1])
    t_dyn = float(sched_rows[2][1])
    assert t_dyn <= t_static * 1.05

    node = NodeComputeModel(cfg)
    benchmark(lambda: node.compute_time_uniform(flops, nq))
