"""F13 — checkpoint overhead: crash safety must be (nearly) free.

The checkpoint subsystem exists for multi-picosecond trajectories, so
its acceptance bar is a measurement: a BOMD run that snapshots **every
step** — the most aggressive cadence the CLI allows, far denser than
the default every-10 — must stay within 5% of a bare run with no
checkpoint store at all.  Each snapshot is a full get_state (trajectory
arrays, warm-start density, counters) plus a pickle, a SHA-256, two
fsync'd atomic renames, and ring pruning; the budget covers all of it.

Timings are min-of-N over full short trajectories (the SCF force
evaluations dominate, which is exactly the production ratio this
subsystem bets on); the minimum is the standard estimator for "the
loop itself" under scheduler noise, and the bare/checkpointed runs are
*interleaved* so slow machine-load drift cannot masquerade as
checkpoint cost.  Both runs must produce bitwise identical
trajectories — checkpointing is observation-only.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.chem import builders
from repro.md import BOMD
from repro.runtime import ExecutionConfig

NSTEPS = int(os.environ.get("REPRO_BENCH_CKPT_STEPS", "4"))
REPEATS = 3
MAX_OVERHEAD = 0.05

pytestmark = pytest.mark.checkpoint


def _run(config=None) -> list:
    b = BOMD(builders.water(), method="hf", dt_fs=0.5, config=config)
    try:
        return b.run(NSTEPS)
    finally:
        b.engine.close()


def _timed(fn) -> tuple[float, object]:
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def test_f13_checkpoint_overhead(tmp_path, report, results_dir):
    _run()                                   # warm caches off the clock
    t_bare = t_ck = float("inf")
    traj_bare = traj_ck = None
    for i in range(REPEATS):                 # interleave bare/checkpointed
        t, traj_bare = _timed(_run)
        t_bare = min(t_bare, t)
        cfg = ExecutionConfig(checkpoint_dir=str(tmp_path / f"ck{i}"),
                              checkpoint_every=1)   # every single step
        t, traj_ck = _timed(lambda: _run(cfg))
        t_ck = min(t_ck, t)

    # checkpointing is observation-only: bitwise identical trajectories
    assert len(traj_ck) == len(traj_bare)
    for sc, sb in zip(traj_ck, traj_bare):
        np.testing.assert_array_equal(sc.coords, sb.coords)
        np.testing.assert_array_equal(sc.velocities, sb.velocities)
        assert sc.energy_pot == sb.energy_pot

    nsnaps = NSTEPS + 1                      # initial state + every step
    overhead = t_ck / t_bare - 1.0
    per_snap = (t_ck - t_bare) / nsnaps
    report(
        f"system              H2O HF/sto-3g  {NSTEPS} MD steps\n"
        f"timing              min of {REPEATS} trajectories each\n"
        f"t(bare)             {t_bare * 1e3:.2f} ms   (no checkpoint "
        f"store)\n"
        f"t(every-step ckpt)  {t_ck * 1e3:.2f} ms   ({overhead:+.2%} "
        f"vs bare, {nsnaps} snapshots)\n"
        f"per-snapshot cost   {per_snap * 1e3:.3f} ms   (get_state + "
        f"pickle + sha256 + 2 fsync'd renames + prune)\n"
        f"acceptance          every-step overhead < {MAX_OVERHEAD:.0%}"
    )
    assert overhead < MAX_OVERHEAD
