"""A2 — load-balancing ablation (DESIGN.md design-choice index).

The scheme's static balance rests on two levers: the cost-model
partitioner and task splitting.  This harness separates them:

  a) coarse grain (unsplit pair tasks, few per rank): cost-aware
     policies beat cost-oblivious ones decisively — this is where the
     cost model earns its keep;
  b) fine grain (split tasks, ~16 per rank): splitting bounds every
     task below the grain, so even naive policies balance — the reason
     the production scheme splits *and* sorts.
"""

import time

from repro.analysis.report import format_seconds, format_table
from repro.hfx import HFXScheme, partition_tasks
from repro.machine import bgq_racks

from conftest import FLOP_SCALE

POLICIES = ("round_robin", "block_equal_counts", "serpentine", "lpt")


def _sweep(wl, cfg, title):
    rows, times = [], {}
    for policy in POLICIES:
        t0 = time.perf_counter()
        part = partition_tasks(wl.flops, cfg.nranks, policy)
        t_part = time.perf_counter() - t0
        bt = HFXScheme(wl, cfg, flop_scale=FLOP_SCALE,
                       partitioner=policy).simulate(part)
        times[policy] = bt.makespan
        rows.append([policy, f"{part.imbalance:.4f}",
                     format_seconds(bt.makespan),
                     format_seconds(t_part)])
    return format_table(
        rows, headers=["partitioner", "imbalance", "t(HFX build)",
                       "t(partitioning)"], title=title), times


def test_a2_partitioners(report, benchmark, condensed_workload):
    # a) coarse grain: raw pair tasks, ~12 per rank
    cfg_a = bgq_racks(4)
    table_a, t_coarse = _sweep(
        condensed_workload, cfg_a,
        f"A2a: coarse grain — unsplit tasks at 4 racks "
        f"({cfg_a.nranks} ranks, {condensed_workload.ntasks} tasks)")

    # b) fine grain: split to 16 subtasks per rank at 96 racks
    cfg_b = bgq_racks(96)
    wl_split = condensed_workload.split(
        condensed_workload.total_flops / (cfg_b.nranks * 16))
    table_b, t_fine = _sweep(
        wl_split, cfg_b,
        f"A2b: fine grain — split tasks at 96 racks "
        f"({cfg_b.nranks} ranks, {wl_split.ntasks} tasks)")
    report(table_a + "\n\n" + table_b +
           "\n\nsplitting bounds every task below the grain, which is "
           "why A2b's policies\nconverge — the production scheme needs "
           "both the splitter and the sorter.")

    # coarse grain: cost-aware wins clearly; exact greedy LPT leads the
    # vectorized serpentine when tasks per rank are this few
    assert t_coarse["serpentine"] < 0.8 * t_coarse["block_equal_counts"]
    assert t_coarse["lpt"] <= t_coarse["serpentine"] < 1.8 * t_coarse["lpt"]
    # fine grain: every policy within ~15% of the best
    best = min(t_fine.values())
    assert max(t_fine.values()) < 1.15 * best

    benchmark(lambda: partition_tasks(wl_split.flops, cfg_b.nranks,
                                      "serpentine"))
