"""Kernel microbenchmark — the serial ERI quartet engine.

Not a paper figure, but the quantity every simulated number is
calibrated against: sustained quartet throughput per kernel class of
this Python engine (the BG/Q model supplies the hardware rates; see
DESIGN.md).
"""

import numpy as np

from repro.analysis.report import format_table
from repro.basis import build_basis
from repro.basis.shellpair import build_shell_pairs
from repro.chem import builders
from repro.hfx.costmodel import quartet_flops
from repro.integrals.eri import eri_quartet


def test_eri_kernel_throughput(report, benchmark):
    b = build_basis(builders.water())
    pairs = build_shell_pairs(b.shells)
    # classes: (ss|ss), (sp|sp), (pp|pp)
    cases = {
        "(ss|ss)": (pairs[(0, 1)], pairs[(0, 1)]),
        "(sp|sp)": (pairs[(0, 2)], pairs[(0, 2)]),
        "(pp|pp)": (pairs[(2, 2)], pairs[(2, 2)]),
    }
    import time

    rows = []
    for label, (bra, ket) in cases.items():
        eri_quartet(bra, ket)   # warm pair caches
        n = 200
        t0 = time.perf_counter()
        for _ in range(n):
            eri_quartet(bra, ket)
        dt = (time.perf_counter() - t0) / n
        flops = quartet_flops(bra.sha.l, bra.shb.l, ket.sha.l, ket.shb.l,
                              bra.nprim, ket.nprim)
        rows.append([label, f"{dt * 1e6:.1f}", f"{flops:.0f}",
                     f"{flops / dt / 1e6:.1f}"])
    table = format_table(
        rows, headers=["class", "us/quartet", "model flops",
                       "model Mflop/s"],
        title="ERI quartet kernel throughput (this Python engine)")
    report(table)

    bra, ket = cases["(sp|sp)"]
    benchmark(lambda: eri_quartet(bra, ket))
