"""F12 — fault recovery overhead: a build with one injected worker death
vs. a clean pool build.

The scheme's fault-tolerance contract (ISSUE 4) is that a worker death
mid-build costs a respawn plus a re-run of exactly the lost rank jobs —
never the whole build, and never correctness.  This benchmark measures
that price with the deterministic injection hook: the same screened
workload is built on a clean pool and on a pool whose worker 0 is
SIGKILLed at the start of the build, and both K matrices are verified
bit-identical against the serial executor.

On a single-core container the absolute times are serialized either
way; the quantity of interest is the recovery overhead ratio (respawn
+ lost-slice re-run over clean build) and the exactness of the
recovered K.  ``REPRO_BENCH_FAULT_WATERS`` resizes the system.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.basis import build_basis
from repro.chem import builders
from repro.hfx import distributed_exchange
from repro.runtime import ExecutionConfig
from repro.runtime.pool import ExchangeWorkerPool, default_nworkers

N_WATERS = int(os.environ.get("REPRO_BENCH_FAULT_WATERS", "2"))
NRANKS = 4
NWORKERS = 2
EPS = 1e-10

pytestmark = [pytest.mark.pool, pytest.mark.fault]


@pytest.fixture(scope="module")
def cluster_state():
    mol = builders.water_cluster(N_WATERS, seed=0)
    basis = build_basis(mol)
    rng = np.random.default_rng(0)
    A = rng.standard_normal((basis.nbf, basis.nbf)) * 0.1
    D = A + A.T + np.eye(basis.nbf)
    return basis, D


def _steady_state_build(basis, D, pool):
    """One warm-up build then one timed build (MD/SCF steady state)."""
    cfg = ExecutionConfig(executor="process")
    distributed_exchange(basis, D, nranks=NRANKS, eps=EPS, pool=pool,
                         config=cfg)
    t0 = time.perf_counter()
    K, _, tasks, _ = distributed_exchange(basis, D, nranks=NRANKS, eps=EPS,
                                          pool=pool, config=cfg)
    return K, tasks, time.perf_counter() - t0


def test_f12_fault_recovery(cluster_state, report, monkeypatch):
    basis, D = cluster_state
    K_serial, _, tasks, _ = distributed_exchange(basis, D, nranks=NRANKS,
                                                 eps=EPS)

    # clean steady-state build
    monkeypatch.delenv("REPRO_POOL_FAULT", raising=False)
    with ExchangeWorkerPool(basis, nworkers=NWORKERS) as pool:
        K_clean, _, t_clean = _steady_state_build(basis, D, pool)

    # identical build, but worker 0 is SIGKILLed at the start of its
    # second exec (= the timed build); the pool respawns it and re-runs
    # the lost rank slices
    monkeypatch.setenv("REPRO_POOL_FAULT", "worker=0,build=2,mode=kill")
    with ExchangeWorkerPool(basis, nworkers=NWORKERS) as pool:
        K_fault, _, t_fault = _steady_state_build(basis, D, pool)
        deaths, respawns = pool.worker_deaths, pool.respawns
        retried = pool.retried_jobs

    err_clean = float(np.abs(K_clean - K_serial).max())
    err_fault = float(np.abs(K_fault - K_serial).max())
    overhead = t_fault / t_clean if t_clean > 0 else float("inf")
    report(
        f"system              (H2O){N_WATERS}  nbf={basis.nbf}  "
        f"quartets={tasks.total_quartets}\n"
        f"pool                {NWORKERS} workers, {NRANKS} ranks, "
        f"{default_nworkers()} usable cores\n"
        f"t(clean build)      {t_clean:.3f} s\n"
        f"t(build + 1 death)  {t_fault:.3f} s   "
        f"({deaths} death, {respawns} respawn, {retried} rank job(s) "
        "re-run)\n"
        f"recovery overhead   {overhead:.2f}x\n"
        f"max|dK| clean       {err_clean:.2e}\n"
        f"max|dK| recovered   {err_fault:.2e}"
    )
    assert deaths == 1 and respawns == 1 and retried >= 1
    assert err_clean == 0.0
    assert err_fault == 0.0
    # recovery re-runs only the lost slices: the faulted build must not
    # degenerate into anything like a from-scratch serial rebuild.
    # Generous bound — single-core containers time-share the workers.
    assert overhead < 10.0
