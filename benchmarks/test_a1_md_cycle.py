"""A1 — full SCF cycle per MD step, with energy to solution.

DESIGN.md's ablation of the "tailored for molecular dynamics" design
point: an MD step needs a whole SCF cycle, and incremental
(density-difference) builds shrink every iteration after the first.
Also reports energy to solution — the metric BG/Q was built around.
"""

from repro.analysis.report import format_seconds, format_table
from repro.hfx import simulate_scf_cycle
from repro.machine import bgq_racks, energy_to_solution

from conftest import FLOP_SCALE

RACKS = 16
N_ITER = 8


def test_a1_md_cycle(report, benchmark, condensed_workload):
    cfg = bgq_racks(RACKS)
    wl = condensed_workload.split(
        condensed_workload.total_flops / (cfg.nranks * 24))

    full = simulate_scf_cycle(wl, cfg, n_iter=N_ITER, incremental=False,
                              flop_scale=FLOP_SCALE)
    inc = simulate_scf_cycle(wl, cfg, n_iter=N_ITER, incremental=True,
                             flop_scale=FLOP_SCALE, rebuild_every=N_ITER)

    rows = []
    for k in range(N_ITER):
        rows.append([k, f"{inc.work_fractions[k]:.3f}",
                     format_seconds(full.builds[k].makespan),
                     format_seconds(inc.builds[k].makespan)])
    e_full = sum(energy_to_solution(b, cfg) for b in full.builds)
    e_inc = sum(energy_to_solution(b, cfg) for b in inc.builds)
    table = format_table(
        rows, headers=["SCF iter", "work fraction", "t(full build)",
                       "t(incremental)"],
        title=f"A1: one MD step's SCF cycle at {RACKS} racks "
              f"({N_ITER} iterations)")
    summary = (
        f"\ncycle time:   full {format_seconds(full.total_time)}   "
        f"incremental {format_seconds(inc.total_time)}   "
        f"({(1 - inc.total_time / full.total_time) * 100:.0f}% saved)"
        f"\ncycle energy: full {e_full / 1e6:.1f} MJ   "
        f"incremental {e_inc / 1e6:.1f} MJ")
    report(table + summary)

    assert inc.total_time < 0.85 * full.total_time
    assert e_inc < e_full

    benchmark(lambda: simulate_scf_cycle(wl, cfg, n_iter=4,
                                         flop_scale=FLOP_SCALE))
