"""F16 — r-RESPA multiple-time-stepping: fewer HFX force builds per ps.

The paper's cost center is the screened HFX build inside every BOMD
force evaluation; at paper scale (TZV2P, condensed phase) the hybrid
build dwarfs everything else in the step.  The r-RESPA integrator
(:class:`repro.md.MTSBOMD`) attacks exactly that: the full hybrid
surface is evaluated only every ``n_outer`` steps, with the cheap
inner surface — here the matching *pure-GGA* functional, whose build
has **no** exact-exchange term — carrying the fast motion in between.
The figure of merit is therefore **hybrid (HFX) force builds per
simulated picosecond**, the quantity that dominates wall-clock at
paper scale (in this STO-3G miniature the GGA build costs nearly as
much as the hybrid one, so raw wall times are reported for context
only).

Benchmark design: PBE0 BOMD on the lithium-electrolyte-model species
(LiH — the lightest Li compound, whose stiff Li-H stretch is the
*hard* case for MTS), NVE after a 300 K velocity draw, equal simulated
time for every config.

* baseline ``n=1``: conventional single-timestep BOMD at the
  production 0.5 fs — every step pays a full PBE0 build;
* MTS ``n=3``/``n=5``: a *finer* 0.3 fs inner timestep on the PBE
  surface (cheap steps buy better fast-mode resolution), full PBE0
  forces only every 0.9/1.5 fs, ASPC density extrapolation
  warm-starting each outer SCF.

Acceptance (the ISSUE-9 bar): at ``n_outer=5`` the trajectory takes
**>= 3x fewer full HFX builds per ps** than the single-timestep
baseline while the NVE drift stays **<= 2x** the baseline's over
>= 200 baseline steps.  Drift is measured as the max excursion of the
conserved total energy, ``max_t |E(t) - E(0)|`` — the envelope a
symplectic integrator's energy oscillates inside; the endpoint metric
(:func:`repro.md.observables.energy_drift`) samples that same envelope
at one arbitrary phase, so it is reported for context but not
asserted.  Runs are deterministic (fixed seed, serial numerical
forces), so the recorded numbers reproduce bitwise on a given
platform.

``REPRO_BENCH_MTS_FS`` shrinks the simulated time span for quick
runs; the acceptance bar is only meaningful at the default 100 fs.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.chem import builders
from repro.md import BOMD, MTSBOMD
from repro.md.observables import energy_drift

T_SIM_FS = float(os.environ.get("REPRO_BENCH_MTS_FS", "100.0"))
DT_BASE = 0.5           # production single-timestep (fs)
DT_INNER = 0.3          # MTS inner timestep (fs)
TEMP_K = 300.0
SEED = 1
MIN_BUILD_RATIO = 3.0   # full-build savings at n_outer=5
MAX_DRIFT_RATIO = 2.0   # NVE drift penalty allowed vs baseline

pytestmark = pytest.mark.mts


def _excursion(traj, masses) -> float:
    e = np.array([s.total_energy(masses) for s in traj])
    return float(np.abs(e - e[0]).max())


def _run_config(n_outer: int) -> dict:
    mol = builders.lih()
    t0 = time.perf_counter()
    if n_outer == 1:
        b = BOMD(mol, method="pbe0", dt_fs=DT_BASE,
                 temperature=TEMP_K, seed=SEED)
        traj = b.run(int(round(T_SIM_FS / DT_BASE)))
        inner_builds = 0
    else:
        b = MTSBOMD(mol, method="pbe0", dt_fs=DT_INNER,
                    temperature=TEMP_K, seed=SEED,
                    n_outer=n_outer, inner="pbe")
        traj = b.run(int(round(T_SIM_FS / (DT_INNER * n_outer))))
        inner_builds = len(b.fast_engine.scf_iterations)
    wall = time.perf_counter() - t0
    masses = mol.masses
    span_fs = (DT_BASE if n_outer == 1 else DT_INNER * n_outer) \
        * traj[-1].step
    return {
        "n": n_outer,
        "dt_fs": DT_BASE if n_outer == 1 else DT_INNER,
        "span_fs": span_fs,
        "steps": traj[-1].step,
        # rate metric: the initial build amortizes to zero over a
        # trajectory, so builds/ps counts the per-step ones
        "hfx_per_ps": (len(b.engine.scf_iterations) - 1) / span_fs * 1e3,
        "hfx_builds": len(b.engine.scf_iterations),
        "gga_builds": inner_builds,
        "drift": energy_drift(traj, masses),
        "excursion": _excursion(traj, masses),
        "wall_s": wall,
    }


def test_f16_mts_hfx_builds_per_ps(report):
    rows = [_run_config(n) for n in (1, 3, 5)]
    base, mts5 = rows[0], rows[2]

    build_ratio = base["hfx_per_ps"] / mts5["hfx_per_ps"]
    drift_ratio = mts5["excursion"] / max(base["excursion"], 1e-300)

    lines = [
        "system       LiH PBE0/sto-3g, NVE after 300 K draw (seed 1)",
        f"span         {T_SIM_FS:.0f} fs simulated per config "
        f"(baseline: {base['steps']} steps)",
        "inner        PBE (no HFX term), ASPC order-2 warm starts",
        "",
        "  n   dt_fs  HFX/ps  HFX  GGA   drift(exc)  drift(end)  wall",
    ]
    for r in rows:
        lines.append(
            f"  {r['n']}   {r['dt_fs']:.2f}   {r['hfx_per_ps']:6.0f}  "
            f"{r['hfx_builds']:4d} {r['gga_builds']:4d}  "
            f"{r['excursion']:.3e}  {r['drift']:.3e}  "
            f"{r['wall_s']:5.1f}s")
    lines += [
        "",
        f"full-build savings (n=5)  {build_ratio:.2f}x fewer HFX "
        f"builds/ps  (acceptance: >= {MIN_BUILD_RATIO:.0f}x)",
        f"NVE drift penalty (n=5)   {drift_ratio:.2f}x the baseline "
        f"max |E(t)-E(0)|  (acceptance: <= {MAX_DRIFT_RATIO:.0f}x)",
        "note: wall times compare STO-3G toy builds where GGA ~ "
        "hybrid cost;",
        "      at paper scale (TZV2P) the GGA inner step is the cheap "
        "one.",
    ]
    report("\n".join(lines))

    # trajectories stayed bound (no FF-style blowups on either surface)
    assert all(r["excursion"] < 1e-3 for r in rows)
    if T_SIM_FS >= 100.0:
        assert base["steps"] >= 200
        assert build_ratio >= MIN_BUILD_RATIO
        assert drift_ratio <= MAX_DRIFT_RATIO
