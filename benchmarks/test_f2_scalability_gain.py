"""F2 — scalability versus the state of the art (>20x claim).

The abstract: "unprecedented scalability up to 6,291,456 threads ...
more than 20-fold improvement as compared to the current state of the
art."  We measure both codes' *maximum useful thread count* (largest
partition still at >= 50% strong-scaling efficiency) on the same
workload and report the ratio.

The baseline runs in its native configuration (flat MPI, 16
single-threaded ranks/node, replicated data, global-counter dispatch).
"""

import numpy as np

from repro.analysis.ascii_fig import line_plot
from repro.analysis.report import format_si, format_table
from repro.analysis.scaling import max_threads_at_efficiency
from repro.hfx import HFXScheme, ReplicatedDynamicBaseline
from repro.machine import bgq_racks, parallel_efficiency

from repro.hfx import legacy_ranks_per_node

from conftest import FLOP_SCALE, TZV2P_NBF_FACTOR

RACKS = (0.25, 1, 2, 4, 8, 16, 32, 48, 96)
# legacy pthreads implementations scaled to ~4 threads per process
LEGACY_THREADS = 4


def test_f2_scalability_gain(report, benchmark, condensed_workload):
    cfg_max = bgq_racks(RACKS[-1])
    wl = condensed_workload.split(
        condensed_workload.total_flops / (cfg_max.nranks * 24))

    # the baseline replicates D and K at production (TZV2P-model) size:
    # the 16 GB nodes then fit a single rank
    nbf_model = int(condensed_workload.nbf * TZV2P_NBF_FACTOR)
    rpn = legacy_ranks_per_node(nbf_model)

    scheme_t, base_t = {}, {}
    for racks in RACKS:
        cfg = bgq_racks(racks)
        cfgb = bgq_racks(racks, ranks_per_node=rpn)
        scheme_t[cfg.total_threads] = HFXScheme(
            wl, cfg, flop_scale=FLOP_SCALE).simulate()
        base = ReplicatedDynamicBaseline(
            condensed_workload, cfgb, flop_scale=FLOP_SCALE,
            cores=LEGACY_THREADS)
        base_t[base.threads_used()] = base.simulate()

    eff_s = parallel_efficiency(scheme_t)
    eff_b = parallel_efficiency(base_t)

    thr_s = np.array(sorted(scheme_t))
    thr_b = np.array(sorted(base_t))
    t_s = np.array([scheme_t[t].makespan for t in thr_s])
    t_b = np.array([base_t[t].makespan for t in thr_b])
    max_s = max_threads_at_efficiency(thr_s, t_s, 0.5)
    max_b = max_threads_at_efficiency(thr_b, t_b, 0.5)

    rows = []
    for a, b in zip(thr_s, thr_b):
        rows.append([format_si(a), f"{scheme_t[a].makespan:.3f}",
                     f"{eff_s[a]:.3f}",
                     format_si(b), f"{base_t[b].makespan:.3f}",
                     f"{eff_b[b]:.3f}"])
    table = format_table(
        rows, headers=["thr(ours)", "t(ours)", "eff(ours)",
                       "thr(base)", "t(base)", "eff(base)"],
        title="F2: scalability — our scheme vs replicated/dynamic baseline")
    summary = (f"\nmax useful threads @ eff>=0.5:  "
               f"ours {format_si(max_s)}   baseline {format_si(max_b)}   "
               f"improvement {max_s / max_b:.1f}x (paper: >20x)")
    fig = line_plot({"ours": (thr_s, np.array([eff_s[t] for t in thr_s])),
                     "baseline": (thr_b, np.array([eff_b[t] for t in thr_b]))},
                    logx=True, title="parallel efficiency vs threads",
                    xlabel="hardware threads", ylabel="efficiency")
    report(table + summary + "\n\n" + fig)

    assert max_s / max_b > 20.0     # the paper's >20-fold claim
    assert max_s >= 6_291_456 * 0.9

    cfg = bgq_racks(16, ranks_per_node=16)
    benchmark(lambda: ReplicatedDynamicBaseline(
        condensed_workload, cfg, flop_scale=FLOP_SCALE).simulate())
