"""F17 — lane transports: thread vs forked-process campaign drains.

The campaign scheduler's dispatch lanes were threads (PR 7): correct,
but the Python-heavy SCF path holds the GIL, so ``--lanes 4`` bought
bookkeeping overlap, not compute overlap.  The process transport forks
one persistent lane worker per lane and speaks a framed RPC protocol
over socketpairs — the lanes become real OS processes that the kernel
can schedule on real cores.

Three legs, one GIL-bound SCF mix (perturbed water geometries — every
spec a distinct cache key, no dedup shortcuts):

* **local, 4 lanes** — the thread reference;
* **process, 4 lanes** — must answer float-for-float what the thread
  lanes answer, and on a multi-core host must win wall-clock;
* **process + injected worker kill** (``worker=0,mode=kill``) — the
  leased job is requeued against its retry budget, the dead lane is
  respawned, and the campaign's answers must *still* match the clean
  reference exactly.

On a single-core container the speedup leg can only demonstrate
correctness — the assertion arms itself only when at least ``NLANES``
cores are usable (the F9 convention).
"""

from __future__ import annotations

import os
import time

import pytest

from repro.runtime.pool import default_nworkers
from repro.service import CampaignService, JobSpec

NJOBS = int(os.environ.get("REPRO_BENCH_TRANSPORT_JOBS", "6"))
NLANES = 4
SPEEDUP_FLOOR = 1.5

pytestmark = pytest.mark.transport

SPECS = [JobSpec(kind="scf", molecule="water", perturb=0.02,
                 perturb_seed=i, label=f"water/p{i}")
         for i in range(NJOBS)]


def _strip(record):
    """Drop the timing/telemetry fields that legitimately differ."""
    if isinstance(record, dict):
        return {k: _strip(v) for k, v in record.items()
                if k not in ("wall_s", "counters")}
    if isinstance(record, list):
        return [_strip(v) for v in record]
    return record


def _drain(home, transport):
    svc = CampaignService(home)
    for spec in SPECS:
        svc.submit(spec)
    t0 = time.perf_counter()
    rep = svc.run(nworkers=NLANES, transport=transport)
    wall = time.perf_counter() - t0
    answers = {r["label"]: _strip(r["result"]) for r in svc.results()}
    return wall, rep, answers


def test_f17_transport_lanes(tmp_path, report, monkeypatch):
    monkeypatch.delenv("REPRO_SERVICE_FAULT", raising=False)
    t_local, rep_local, ans_local = _drain(tmp_path / "local", "local")
    t_proc, rep_proc, ans_proc = _drain(tmp_path / "process", "process")

    monkeypatch.setenv("REPRO_SERVICE_FAULT", "worker=0,mode=kill")
    t_fault, rep_fault, ans_fault = _drain(tmp_path / "fault", "process")

    speedup = t_local / t_proc
    cores = default_nworkers()
    cf = rep_fault["counters"]
    report(
        f"campaign          {NJOBS} GIL-bound SCF jobs "
        f"(perturbed water, all distinct keys)\n"
        f"lanes             {NLANES}  ({cores} usable cores)\n"
        f"t(local lanes)    {t_local:.3f} s   (threads, one interpreter)\n"
        f"t(process lanes)  {t_proc:.3f} s   (forked workers, framed RPC)\n"
        f"speedup           {speedup:.2f}x   "
        f"(floor {SPEEDUP_FLOOR}x armed at >= {NLANES} cores)\n"
        f"answers           process == local: {ans_proc == ans_local}\n"
        f"fault leg         worker=0 killed: "
        f"{cf.get('service.worker_deaths', 0)} death(s), "
        f"{cf.get('service.requeued_jobs', 0)} requeue(s), "
        f"{cf.get('service.worker_respawns', 0)} respawn(s), "
        f"{rep_fault['completed']}/{NJOBS} completed in {t_fault:.3f} s\n"
        f"fault answers     identical to clean local reference: "
        f"{ans_fault == ans_local}"
    )

    # correctness: every leg completes everything, answers bit-identical
    assert rep_local["completed"] == NJOBS and rep_local["failed"] == 0
    assert rep_proc["completed"] == NJOBS and rep_proc["failed"] == 0
    assert ans_proc == ans_local

    # the killed worker's lease was requeued and recovered
    assert rep_fault["completed"] == NJOBS and rep_fault["failed"] == 0
    assert cf["service.worker_deaths"] >= 1
    assert cf["service.requeued_jobs"] >= 1
    assert ans_fault == ans_local

    # throughput: armed only where the cores exist to show it
    if cores >= NLANES:
        assert speedup >= SPEEDUP_FLOOR
